//! Multi-job serving: FIFO admission of concurrent [`MapJob`]s.
//!
//! HAIL's premise is a cluster fielding many jobs at once over shared
//! replicas. The [`JobManager`] is the admission layer that makes that
//! real: callers queue a batch of jobs, the manager dequeues them in
//! strict FIFO order, and at most [`JobManager::max_concurrent`] jobs
//! are in flight at any moment. Each in-flight job runs the ordinary
//! [`crate::scheduler::run_map_job`] drive loop, so every job keeps the solo O(chunk)
//! peak-memory bound (bounded in-flight jobs × bounded chunk each).
//!
//! # Determinism contract
//!
//! A managed job's output, its report fields, and its own feedback
//! deltas are bit-for-bit identical to a solo [`crate::scheduler::run_map_job`] run at
//! any interleaving — concurrency may only change measured wall clock
//! ([`crate::job::TaskReport::reader_wall_seconds`]) and the
//! queue-wait telemetry
//! ([`crate::job::JobReport::queue_wait_seconds`], which the manager
//! fills in with the measured wall-clock delay between admission and
//! dequeue; solo runs report zero). That holds because everything a
//! job shares with its neighbours is either immutable for the job's
//! duration (the cluster, the formats) or key-pure and absorbed
//! deterministically (the execution layer's plan cache and
//! selectivity feedback — see `read_split_batch`'s contract in
//! [`crate::input_format::InputFormat`]).
//!
//! Jobs that share mutable planner state (one `Arc`'d plan cache or
//! feedback table plumbed into several jobs' formats) still produce
//! bit-for-bit identical *output*, because cached plans are keyed so
//! that a hit returns exactly what a fresh pricing would have built —
//! but their hit/miss *counters* naturally depend on which job warmed
//! the cache first. Callers comparing managed reports against solo
//! baselines with shared caches should compare aggregate counts, not
//! per-job ones. A shared *feedback* store is safe under the same
//! contract when its absorption is deferred to a submission-order
//! barrier after the batch (the bench layer's `run_queries_managed`
//! does this): during the batch the store is frozen — planners read
//! it, nothing writes it — so every job prices against identical
//! state at any concurrency.
//!
//! # Scan sharing
//!
//! The manager also tracks which blocks its in-flight jobs are still
//! going to read (an [`InFlightBlocks`] interest map, registered per
//! job at dequeue and released chunk by chunk as the drive loop
//! progresses). The execution layer's scan-share registry subscribes
//! to its drain signal so decoded blocks are retained exactly while
//! some admitted job still wants them — see `hail_exec::sharing`. The
//! sharing counters (`TaskStats::blocks_read_shared` /
//! `shared_bytes_saved`) are the one telemetry pair excluded from the
//! per-job determinism contract: which of two overlapping jobs
//! produces vs. attaches is a race, but every *other* stat is
//! synthesized bit-for-bit either way.

use crate::inflight::InFlightBlocks;
use crate::scheduler::{run_map_job_with_interest, JobRun, MapJob};
use hail_dfs::DfsCluster;
use hail_sim::ClusterSpec;
use hail_sync::{LockRank, OrderedMutex};
use hail_types::Result;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment override for the manager's in-flight-job bound, read by
/// [`JobManager::from_env`]. Unset, unparsable, or `0` mean 1 (serial
/// admission) — the same "absent means no concurrency" convention as
/// `HAIL_PARALLELISM` / `HAIL_JOB_PARALLELISM`. Registered in
/// [`hail_core::knobs`].
pub const MAX_CONCURRENT_JOBS_ENV: &str = hail_core::knobs::MAX_CONCURRENT_JOBS.name;

/// The in-flight bound from [`MAX_CONCURRENT_JOBS_ENV`], via the
/// central knob registry.
fn env_max_concurrent_jobs() -> usize {
    hail_core::knobs::max_concurrent_jobs()
}

/// Admits and runs concurrent map jobs with FIFO dequeue order and a
/// bounded number in flight.
///
/// The manager owns no execution resources itself — worker threads are
/// scoped to each [`JobManager::run_batch`] call, and the cross-job
/// resources worth sharing (the execution layer's `JobPool` budget,
/// per-node gates, plan cache, selectivity feedback) are shared by
/// plumbing the same `Arc`s into each job's `InputFormat`, not by the
/// manager reaching into the formats. That keeps the lock hierarchy
/// one-directional: JobManager → (per job) JobPool → NodeGate →
/// planner locks — machine-checked end to end by `hail-sync`'s
/// `LockRank` (the slots here sit at the top rank, `ManagerSlot`; see
/// ARCHITECTURE.md, "Concurrency invariants & enforcement").
pub struct JobManager {
    max_concurrent: usize,
    in_flight: Arc<InFlightBlocks>,
}

impl JobManager {
    /// A manager running at most `max_concurrent` jobs at once
    /// (clamped to at least 1).
    pub fn new(max_concurrent: usize) -> Self {
        JobManager {
            max_concurrent: max_concurrent.max(1),
            in_flight: Arc::new(InFlightBlocks::new()),
        }
    }

    /// A manager bounded by the [`MAX_CONCURRENT_JOBS_ENV`]
    /// environment variable (1 when unset).
    pub fn from_env() -> Self {
        JobManager::new(env_max_concurrent_jobs())
    }

    /// The in-flight-job bound.
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// The manager's in-flight block interest map: every admitted
    /// job's input blocks, registered at dequeue and released chunk by
    /// chunk as its drive loop progresses. The scan-share registry
    /// subscribes to its drain signal to bound decoded-block retention
    /// to the admission window.
    pub fn in_flight_blocks(&self) -> &Arc<InFlightBlocks> {
        &self.in_flight
    }

    /// Runs `jobs` to completion, at most [`Self::max_concurrent`] at
    /// a time, and returns one result per job in submission order.
    ///
    /// Admission is FIFO: jobs are dequeued strictly in slice order
    /// (job *i* never starts after job *i+1* has been dequeued),
    /// though with concurrency > 1 neighbouring jobs overlap and may
    /// *finish* in any order. Every job's
    /// [`queue_wait_seconds`](crate::job::JobReport::queue_wait_seconds)
    /// is set to the measured wall-clock time it spent queued — from
    /// this call's start to its dequeue.
    pub fn run_batch(
        &self,
        cluster: &DfsCluster,
        spec: &ClusterSpec,
        jobs: &[MapJob<'_>],
    ) -> Vec<Result<JobRun>> {
        if jobs.is_empty() {
            return Vec::new();
        }
        let admitted = Instant::now();
        let next = AtomicUsize::new(0);
        let slots: Vec<OrderedMutex<Option<Result<JobRun>>>> = jobs
            .iter()
            .map(|_| OrderedMutex::new(LockRank::ManagerSlot, "manager-job-slot", None))
            .collect();
        let workers = self.max_concurrent.min(jobs.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::SeqCst);
                    if i >= jobs.len() {
                        break;
                    }
                    let queue_wait_seconds = admitted.elapsed().as_secs_f64();
                    // Declare this job's blocks in flight for the whole
                    // read (released chunk by chunk by the drive loop,
                    // remainder on drop) so overlapping jobs can attach
                    // to each other's decodes.
                    let interest = self.in_flight.register(&jobs[i].input);
                    let result =
                        run_map_job_with_interest(cluster, spec, &jobs[i], Some(&interest)).map(
                            |mut run| {
                                run.report.queue_wait_seconds = queue_wait_seconds;
                                run
                            },
                        );
                    drop(interest);
                    *slots[i].acquire() = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every admitted job leaves a result")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputFormat, InputSplit, SplitPlan, SplitRead, SplitTask};
    use crate::job::{MapRecord, TaskStats};
    use crate::scheduler::run_map_job;
    use hail_sim::HardwareProfile;
    use hail_types::{BlockId, DatanodeId, Row, StorageConfig, Value};
    use std::sync::Mutex;

    /// Emits one row per block and tracks how many batch reads are in
    /// flight at once (the manager-level concurrency gauge).
    struct GaugeFormat {
        in_flight: AtomicUsize,
        high_water: AtomicUsize,
    }

    impl GaugeFormat {
        fn new() -> Self {
            GaugeFormat {
                in_flight: AtomicUsize::new(0),
                high_water: AtomicUsize::new(0),
            }
        }
    }

    impl InputFormat for GaugeFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| InputSplit::for_block(b, vec![live[b as usize % live.len()]]))
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            _cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: DatanodeId,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            emit(MapRecord::good(Row::new(vec![Value::Long(
                split.blocks[0] as i64,
            )])));
            Ok(TaskStats {
                records: 1,
                ..Default::default()
            })
        }

        fn read_split_batch(
            &self,
            cluster: &DfsCluster,
            batch: &[SplitTask<'_>],
            _job_parallelism: Option<usize>,
        ) -> Result<Vec<SplitRead>> {
            let now = self.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            self.high_water.fetch_max(now, Ordering::SeqCst);
            let reads = batch
                .iter()
                .map(|t| {
                    let mut records = Vec::new();
                    let stats = self.read_split(cluster, t.split, t.ctx.task_node, &mut |rec| {
                        records.push(rec)
                    })?;
                    Ok(SplitRead {
                        records,
                        stats,
                        reader_wall_seconds: 0.0,
                    })
                })
                .collect();
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            reads
        }

        fn name(&self) -> &str {
            "gauge"
        }
    }

    fn job<'a>(
        name: &str,
        format: &'a dyn InputFormat,
        blocks: std::ops::Range<u64>,
    ) -> MapJob<'a> {
        MapJob {
            name: name.into(),
            input: blocks.collect(),
            format,
            parallelism: None,
            job_parallelism: None,
            map: Box::new(|rec, out| out.push(rec.row.clone())),
        }
    }

    #[test]
    fn max_concurrent_is_clamped() {
        assert_eq!(JobManager::new(0).max_concurrent(), 1);
        assert_eq!(JobManager::new(3).max_concurrent(), 3);
        // from_env honours the same ≥1 clamp whatever the environment
        // says (the CI matrix runs this suite with the knob set).
        assert!(JobManager::from_env().max_concurrent() >= 1);
    }

    /// With one in-flight slot the manager is a strict FIFO queue:
    /// jobs run in submission order, and each job's measured queue
    /// wait is at least its predecessor's.
    #[test]
    fn serial_admission_is_fifo() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let spec = ClusterSpec::new(2, HardwareProfile::physical());
        let fmt = GaugeFormat::new();
        let order: Mutex<Vec<usize>> = Mutex::new(Vec::new());
        let order_ref = &order;
        let jobs: Vec<MapJob<'_>> = (0..6)
            .map(|j| MapJob {
                name: format!("job-{j}"),
                input: (0..4).collect(),
                format: &fmt,
                parallelism: None,
                job_parallelism: None,
                map: Box::new(move |rec, out| {
                    if rec.row.get(0) == Some(&Value::Long(0)) {
                        order_ref.lock().unwrap().push(j);
                    }
                    out.push(rec.row.clone());
                }),
            })
            .collect();
        let results = JobManager::new(1).run_batch(&cluster, &spec, &jobs);
        assert_eq!(results.len(), 6);
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2, 3, 4, 5]);
        let mut prev_wait = 0.0;
        for run in results {
            let run = run.unwrap();
            assert_eq!(run.output.len(), 4);
            assert!(run.report.queue_wait_seconds >= prev_wait);
            prev_wait = run.report.queue_wait_seconds;
        }
        // One in-flight slot means the gauge never saw overlap.
        assert_eq!(fmt.high_water.load(Ordering::SeqCst), 1);
    }

    /// The in-flight bound holds: with `max_concurrent = 2`, no more
    /// than two jobs' batch reads ever overlap, and every job's output
    /// is bit-for-bit what a solo run produces.
    #[test]
    fn bounded_in_flight_and_solo_equivalence() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let spec = ClusterSpec::new(2, HardwareProfile::physical());
        let fmt = GaugeFormat::new();
        let jobs: Vec<MapJob<'_>> = (0..8)
            .map(|j| job(&format!("job-{j}"), &fmt, (j * 10)..(j * 10 + 7)))
            .collect();
        let results = JobManager::new(2).run_batch(&cluster, &spec, &jobs);
        assert!(fmt.high_water.load(Ordering::SeqCst) <= 2);

        for (j, run) in results.into_iter().enumerate() {
            let run = run.unwrap();
            let solo = run_map_job(
                &cluster,
                &spec,
                &job(
                    &format!("job-{j}"),
                    &fmt,
                    (j as u64 * 10)..(j as u64 * 10 + 7),
                ),
            )
            .unwrap();
            assert_eq!(run.output, solo.output);
            assert_eq!(
                run.report.end_to_end_seconds,
                solo.report.end_to_end_seconds
            );
            assert_eq!(run.report.tasks.len(), solo.report.tasks.len());
            assert!(run.report.queue_wait_seconds >= 0.0);
            assert_eq!(solo.report.queue_wait_seconds, 0.0);
        }
    }

    #[test]
    fn empty_batch_returns_nothing() {
        let cluster = DfsCluster::new(1, StorageConfig::default());
        let spec = ClusterSpec::new(1, HardwareProfile::physical());
        assert!(JobManager::new(4)
            .run_batch(&cluster, &spec, &[])
            .is_empty());
    }
}
