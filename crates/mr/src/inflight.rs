//! Cross-job in-flight block interest: which blocks the admitted jobs
//! of a [`crate::manager::JobManager`] batch are still going to read.
//!
//! The manager registers every admitted job's input block set at
//! dequeue time (an [`InterestGuard`]), the chunked drive loop releases
//! each chunk's blocks as soon as the chunk's reads are consumed, and
//! the guard's `Drop` releases whatever is left (error paths, partial
//! runs). Observers subscribed with [`InFlightBlocks::on_drained`] are
//! told when a block's interest count drains to zero — the execution
//! layer's scan-share registry uses exactly that signal to evict its
//! retained decoded blocks, so sharing windows track admission windows.
//!
//! Lock discipline (ranks enforced by `hail-sync`; see
//! ARCHITECTURE.md, "Concurrency invariants & enforcement"): the
//! interest-count mutex ([`LockRank::InterestCounts`]) is never held
//! while calling out — drain observers run *after* the counts lock is
//! dropped, under the observer-list mutex ([`LockRank::ObserverList`]),
//! which ranks just above the scan-share registry leaf so an observer
//! may evict retained decodes but must not call back into this
//! tracker or take any higher-ranked lock.

use hail_sync::{LockRank, OrderedMutex};
use hail_types::BlockId;
use std::collections::BTreeMap;
use std::sync::Arc;

type DrainObserver = Box<dyn Fn(&[BlockId]) + Send + Sync>;

/// Reference-counted interest in block ids across in-flight jobs.
pub struct InFlightBlocks {
    counts: OrderedMutex<BTreeMap<BlockId, usize>>,
    observers: OrderedMutex<Vec<DrainObserver>>,
}

impl Default for InFlightBlocks {
    fn default() -> Self {
        InFlightBlocks {
            counts: OrderedMutex::new(LockRank::InterestCounts, "inflight-counts", BTreeMap::new()),
            observers: OrderedMutex::new(LockRank::ObserverList, "inflight-observers", Vec::new()),
        }
    }
}

impl InFlightBlocks {
    pub fn new() -> Self {
        InFlightBlocks::default()
    }

    /// Declares interest in `blocks` (one count per occurrence) and
    /// returns the guard that owes the matching releases.
    pub fn register(self: &Arc<Self>, blocks: &[BlockId]) -> InterestGuard {
        let mut remaining: BTreeMap<BlockId, usize> = BTreeMap::new();
        {
            let mut counts = self.counts.acquire();
            for &b in blocks {
                *counts.entry(b).or_insert(0) += 1;
                *remaining.entry(b).or_insert(0) += 1;
            }
        }
        InterestGuard {
            tracker: Arc::clone(self),
            remaining: OrderedMutex::new(
                LockRank::InterestCounts,
                "interest-guard-remaining",
                remaining,
            ),
        }
    }

    /// Current interest count for one block.
    pub fn interest(&self, block: BlockId) -> usize {
        self.counts.acquire().get(&block).copied().unwrap_or(0)
    }

    /// Subscribes a drain observer: called with every batch of blocks
    /// whose interest count just reached zero. Runs without the counts
    /// lock held; must not call back into this tracker.
    pub fn on_drained(&self, observer: impl Fn(&[BlockId]) + Send + Sync + 'static) {
        self.observers.acquire().push(Box::new(observer));
    }

    /// Number of subscribed drain observers (observer dedup support for
    /// layers that must not subscribe twice).
    pub fn observer_count(&self) -> usize {
        self.observers.acquire().len()
    }

    fn release(&self, blocks: &[BlockId]) {
        let drained: Vec<BlockId> = {
            let mut counts = self.counts.acquire();
            blocks
                .iter()
                .filter_map(|&b| match counts.get_mut(&b) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        None
                    }
                    Some(_) => {
                        counts.remove(&b);
                        Some(b)
                    }
                    None => None,
                })
                .collect()
        };
        if drained.is_empty() {
            return;
        }
        // The counts lock is dropped; observers see a consistent "these
        // blocks drained" batch and may take their own (leaf) locks.
        for observer in self.observers.acquire().iter() {
            observer(&drained);
        }
    }
}

/// RAII interest held by one admitted job. Release early per chunk via
/// [`InterestGuard::release_blocks`]; `Drop` releases the remainder, so
/// an error mid-job never leaks interest counts.
pub struct InterestGuard {
    tracker: Arc<InFlightBlocks>,
    remaining: OrderedMutex<BTreeMap<BlockId, usize>>,
}

impl InterestGuard {
    /// Releases this guard's interest in `blocks` (one count per
    /// occurrence). Blocks the guard no longer holds are ignored, so
    /// per-chunk release followed by `Drop` never double-releases.
    pub fn release_blocks(&self, blocks: &[BlockId]) {
        let to_release: Vec<BlockId> = {
            let mut remaining = self.remaining.acquire();
            blocks
                .iter()
                .filter(|&&b| match remaining.get_mut(&b) {
                    Some(n) if *n > 1 => {
                        *n -= 1;
                        true
                    }
                    Some(_) => {
                        remaining.remove(&b);
                        true
                    }
                    None => false,
                })
                .copied()
                .collect()
        };
        if !to_release.is_empty() {
            self.tracker.release(&to_release);
        }
    }
}

impl Drop for InterestGuard {
    fn drop(&mut self) {
        let rest: Vec<BlockId> = self
            .remaining
            .get_mut()
            .iter()
            .flat_map(|(&b, &n)| std::iter::repeat_n(b, n))
            .collect();
        if !rest.is_empty() {
            self.tracker.release(&rest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn register_release_and_drain_notifications() {
        let tracker = Arc::new(InFlightBlocks::new());
        let drained = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&drained);
        tracker.on_drained(move |blocks| sink.lock().unwrap().extend_from_slice(blocks));

        let g1 = tracker.register(&[1, 2, 3]);
        let g2 = tracker.register(&[2, 3, 4]);
        assert_eq!(tracker.interest(2), 2);
        assert_eq!(tracker.interest(1), 1);
        assert_eq!(tracker.interest(9), 0);

        g1.release_blocks(&[1, 2]);
        // Block 1 drained (only g1 held it); block 2 still held by g2.
        assert_eq!(*drained.lock().unwrap(), vec![1]);
        assert_eq!(tracker.interest(2), 1);

        drop(g2);
        drop(g1); // releases only its remaining block 3
        let mut all = drained.lock().unwrap().clone();
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3, 4]);
        for b in 1..=4 {
            assert_eq!(tracker.interest(b), 0);
        }
    }

    #[test]
    fn double_release_is_ignored() {
        let tracker = Arc::new(InFlightBlocks::new());
        let drains = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&drains);
        tracker.on_drained(move |blocks| {
            counter.fetch_add(blocks.len(), Ordering::SeqCst);
        });
        let g = tracker.register(&[7]);
        g.release_blocks(&[7]);
        g.release_blocks(&[7]); // no interest left in the guard
        drop(g);
        assert_eq!(drains.load(Ordering::SeqCst), 1);
        assert_eq!(tracker.interest(7), 0);
    }

    #[test]
    fn duplicate_blocks_count_per_occurrence() {
        let tracker = Arc::new(InFlightBlocks::new());
        let g = tracker.register(&[5, 5]);
        assert_eq!(tracker.interest(5), 2);
        g.release_blocks(&[5]);
        assert_eq!(tracker.interest(5), 1);
        drop(g);
        assert_eq!(tracker.interest(5), 0);
    }
}
