//! Failover: node death during a running job, task re-execution, and
//! the slowdown metric of §6.4.3.
//!
//! Methodology mirrors the paper: pick a node, kill it after a given
//! fraction of work progress, wait out the expiry interval (30 s), and
//! re-schedule the lost tasks on surviving nodes. The slowdown is
//! `(T_f − T_b) / T_b × 100`.
//!
//! The interesting HAIL-specific behaviour happens inside the record
//! reader on re-execution: if the dead node held the only replica with a
//! matching index, the re-run falls back to scanning another replica
//! (HAIL); with the same index on all replicas (HAIL-1Idx) the re-run
//! still gets an index scan — exactly the Fig. 8 comparison.

use crate::driver::ChunkedDrive;
use crate::input_format::{InputSplit, SplitTask};
use crate::job::{JobReport, TaskReport};
use crate::scheduler::{run_map_job_with_plan, MapJob, NodeSlots};
use hail_dfs::DfsCluster;
use hail_sim::ClusterSpec;
use hail_types::{BlockId, DatanodeId, HailError, Result, Row};
use std::collections::BTreeMap;

pub use hail_dfs::EXPIRY_INTERVAL_S;

/// A split's block set in canonical (sorted) order — the identity
/// replayed splits are matched by across plan re-derivations.
fn sorted_blocks(split: &InputSplit) -> Vec<BlockId> {
    let mut blocks = split.blocks.clone();
    blocks.sort_unstable();
    blocks
}

/// A staged failure: kill `node` once the job has made `at_progress`
/// (0..1) of its no-failure runtime; lost tasks are re-scheduled after
/// `expiry_s`.
#[derive(Debug, Clone, Copy)]
pub struct FailureScenario {
    pub node: DatanodeId,
    pub at_progress: f64,
    pub expiry_s: f64,
}

impl FailureScenario {
    pub fn at_half(node: DatanodeId) -> Self {
        FailureScenario {
            node,
            at_progress: 0.5,
            expiry_s: EXPIRY_INTERVAL_S,
        }
    }
}

/// Outcome of a job run under failure.
#[derive(Debug)]
pub struct FailoverRun {
    /// Output rows (complete despite the failure).
    pub output: Vec<Row>,
    /// The failure-free report (baseline `T_b`).
    pub baseline: JobReport,
    /// The with-failure report (`T_f`), including re-executed tasks.
    pub with_failure: JobReport,
    /// Simulated instant the node died.
    pub failure_time: f64,
    /// Tasks that were lost and re-executed.
    pub rerun_count: usize,
}

impl FailoverRun {
    /// §6.4.3's slowdown: `(T_f − T_b) / T_b × 100`.
    pub fn slowdown_percent(&self) -> f64 {
        let tb = self.baseline.end_to_end_seconds;
        let tf = self.with_failure.end_to_end_seconds;
        (tf - tb) / tb * 100.0
    }
}

/// Runs a job with a mid-flight node failure.
///
/// The cluster is mutated (the node is killed) and *left dead* on
/// return, matching reality: callers that need the node back must revive
/// it explicitly.
pub fn run_map_job_with_failure(
    cluster: &mut DfsCluster,
    spec: &ClusterSpec,
    job: &MapJob<'_>,
    scenario: FailureScenario,
) -> Result<FailoverRun> {
    // Snapshot the split plan *before* the baseline run: pass 1's reads
    // mutate any configured adaptive state (selectivity feedback), so a
    // plan derived afterwards could cluster blocks differently than the
    // plan the baseline actually executed — and the replay below must
    // index exactly that plan. The snapshot is threaded straight into
    // the baseline run, so `splits()` is derived exactly once for both.
    let baseline_plan = job.format.splits(cluster, &job.input)?;

    // Pass 1: failure-free baseline (functional output + T_b), executed
    // on the snapshotted plan.
    let baseline_run = run_map_job_with_plan(cluster, spec, job, &baseline_plan, None)?;
    let t_b = baseline_run.report.end_to_end_seconds;
    let failure_time = scenario.at_progress.clamp(0.0, 1.0) * t_b;
    let hw = &spec.profile;
    let pre_phase = hw.job_startup_s + baseline_run.report.split_phase_seconds;

    // Pass 2: replay the schedule with the failure injected.
    //
    // - Tasks on the dead node still running at (or scheduled after) the
    //   failure are *lost* and re-executed after the expiry interval.
    // - Tasks on live nodes that had not yet started at the failure see
    //   the degraded cluster: a read that would have used the dead
    //   node's replica now picks another one — possibly falling back
    //   from index scan to full scan (the HAIL vs HAIL-1Idx effect).
    // - Tasks that started before the failure keep their original reads
    //   at their original times.
    //
    // Every replayed or re-executed task reads the **baseline** split
    // plan snapshotted above, before pass 1 ran and before the node
    // dies. The split boundaries were fixed by the JobClient before the
    // failure; re-deriving them on the degraded cluster can shift them
    // (e.g. `HailSplitting` re-clusters blocks by serving node), and
    // indexing a shifted plan with baseline split indices would read
    // the wrong blocks — or die with "split vanished".
    let mut slots = NodeSlots::new(cluster, hw.map_slots);
    let mut final_tasks: Vec<TaskReport> = Vec::with_capacity(baseline_run.report.tasks.len());

    // Makespan-relative failure instant (schedules run after pre_phase).
    let failure_makespan_t = (failure_time - pre_phase).max(0.0);

    // Kill the node up front: every re-evaluated read below must see
    // dead replicas.
    cluster.kill_node(scenario.node)?;
    // Degraded re-plan, consulted only to *freshen the locations* of
    // lost splits (the planner may now prefer surviving replicas).
    // Splits are matched by block set — never by index, which the
    // degraded plan does not preserve.
    let degraded_plan = job.format.splits(cluster, &job.input)?;
    let degraded_by_blocks: BTreeMap<Vec<BlockId>, &InputSplit> = degraded_plan
        .splits
        .iter()
        .map(|s| (sorted_blocks(s), s))
        .collect();
    let baseline_split = |idx: usize| -> Result<&InputSplit> {
        baseline_plan
            .splits
            .get(idx)
            .ok_or_else(|| HailError::Job(format!("split {idx} missing from the baseline plan")))
    };

    let is_lost = |t: &TaskReport| t.node == scenario.node && t.end > failure_makespan_t;
    let is_reevaluated = |t: &TaskReport| t.node != scenario.node && t.start >= failure_makespan_t;

    // Re-evaluate every not-yet-started live-node task against the
    // degraded cluster, fanning the reads through the same job-level
    // pool `run_map_job` uses. Their nodes are already fixed (the
    // baseline assignment), so no assignment phase is needed here.
    // (Output was already collected functionally in pass 1; records
    // are discarded.)
    let reeval_batch: Vec<SplitTask<'_>> = baseline_run
        .report
        .tasks
        .iter()
        .filter(|t| is_reevaluated(t))
        .map(|t| {
            Ok(SplitTask {
                split: baseline_split(t.split)?,
                ctx: job.split_context(t.node),
            })
        })
        .collect::<Result<_>>()?;
    // Driven through the same shared chunked loop as `run_map_job`'s
    // execution phase, and only the (small) statistics are retained —
    // each chunk's buffered records are dropped as soon as it
    // completes, so a large replay never holds more than one chunk's
    // raw records.
    let mut reeval_results: Vec<(crate::job::TaskStats, f64)> =
        Vec::with_capacity(reeval_batch.len());
    ChunkedDrive::for_job(cluster, job).run(&reeval_batch, |_, read| {
        reeval_results.push((read.stats, read.reader_wall_seconds));
    })?;
    let mut reeval_results = reeval_results.into_iter();

    let mut lost: Vec<usize> = Vec::new();
    for task in &baseline_run.report.tasks {
        if is_lost(task) {
            // Lost: either mid-run at the failure or scheduled after it.
            lost.push(task.split);
            continue;
        }
        if is_reevaluated(task) {
            let (stats, reader_wall_seconds) = reeval_results
                .next()
                .expect("one batched read per re-evaluated task");
            let reader_seconds = stats.reader_seconds(hw, spec.scale);
            let duration = hw.task_overhead_s + reader_seconds;
            // Causality clamp: this task had not started when the node
            // died, so its replay must not start before the failure
            // instant — even if a cheaper degraded read (e.g. a remote
            // read turned local) frees its slot earlier than the
            // baseline did.
            let (start, end) = slots.assign(task.node, duration, failure_makespan_t);
            final_tasks.push(TaskReport {
                split: task.split,
                node: task.node,
                start,
                end,
                reader_seconds,
                reader_wall_seconds,
                rerun: false,
                stats,
            });
            continue;
        }
        // Replay unchanged (read happened before the failure), pinned
        // at its baseline start: a pre-failure task must not drift
        // earlier just because the replay freed a slot sooner (e.g.
        // lost tasks dropping off the dead node's pool).
        let duration = task.end - task.start;
        let (start, end) = slots.assign(task.node, duration, task.start);
        final_tasks.push(TaskReport {
            start,
            end,
            ..task.clone()
        });
    }
    slots.kill_node(scenario.node);
    let resume_at = failure_makespan_t + scenario.expiry_s;

    // Lost tasks replay through the same two-phase schedule/execute
    // shape as `run_map_job`: choose every rerun's node up front from
    // the post-replay slot state (estimated durations on a throwaway
    // copy), fan the re-reads through the job-level pool, then price
    // the real schedule from the actual statistics — in order, never
    // before `resume_at`.
    let lost_splits: Vec<&InputSplit> = lost
        .iter()
        .map(|&idx| {
            let base = baseline_split(idx)?;
            // Prefer the degraded plan's locations for the same block
            // set, when the format still produces such a split.
            Ok(degraded_by_blocks
                .get(&sorted_blocks(base))
                .copied()
                .unwrap_or(base))
        })
        .collect::<Result<_>>()?;
    let mut planning = slots.clone();
    let mut rerun_nodes = Vec::with_capacity(lost_splits.len());
    for split in &lost_splits {
        let node = planning
            .choose_node(&split.locations)
            .ok_or_else(|| HailError::Job("no live nodes to re-schedule on".into()))?;
        let est = job
            .format
            .estimate_split(cluster, split)
            .unwrap_or_else(|| crate::scheduler::fallback_split_estimate(hw, split))
            .max(0.0);
        planning.assign(node, hw.task_overhead_s + est, resume_at);
        rerun_nodes.push(node);
    }
    let rerun_batch: Vec<SplitTask<'_>> = lost_splits
        .iter()
        .zip(&rerun_nodes)
        .map(|(split, &node)| SplitTask {
            split,
            ctx: job.split_context(node),
        })
        .collect();
    let mut output_extra: Vec<Row> = Vec::new();
    let mut rerun_count = 0;
    let mut scratch = Vec::new();
    // Driven through the shared chunked loop, like the re-evaluation
    // pass: each chunk's records are mapped and dropped before the next
    // chunk reads.
    ChunkedDrive::for_job(cluster, job).run(&rerun_batch, |i, read| {
        final_tasks.push(crate::scheduler::account_split_read(
            job,
            spec,
            &mut slots,
            lost[i],
            rerun_nodes[i],
            resume_at,
            true,
            read,
            &mut output_extra,
            &mut scratch,
        ));
        rerun_count += 1;
    })?;

    // Output correctness: surviving tasks' output was already collected
    // in pass 1; the functional result equals the baseline output set.
    // (Re-reads above validated that lost splits remain readable.)
    let with_failure = JobReport {
        job_name: job.name.clone(),
        startup_seconds: hw.job_startup_s,
        split_phase_seconds: baseline_run.report.split_phase_seconds,
        split_count: baseline_plan.splits.len(),
        total_slots: slots.live_slot_count(),
        tasks: final_tasks,
        end_to_end_seconds: pre_phase + slots.makespan(),
        queue_wait_seconds: 0.0,
    };

    Ok(FailoverRun {
        output: baseline_run.output,
        baseline: baseline_run.report,
        with_failure,
        failure_time,
        rerun_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputFormat, InputSplit, SplitPlan};
    use crate::job::{MapRecord, TaskStats};
    use crate::scheduler::run_map_job;
    use hail_sim::HardwareProfile;
    use hail_types::{BlockId, StorageConfig, Value};

    /// Format whose blocks live on `block % nodes`, with other nodes as
    /// fallback locations.
    struct SpreadFormat {
        read_seconds_bytes: u64,
    }

    impl InputFormat for SpreadFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| {
                        // Preferred node + all live nodes as fallbacks.
                        let preferred = live[b as usize % live.len()];
                        let mut locs = vec![preferred];
                        locs.extend(live.iter().copied().filter(|&n| n != preferred));
                        InputSplit::for_block(b, locs)
                    })
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: usize,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            // Fail if every location is dead (data genuinely lost).
            if split
                .locations
                .iter()
                .all(|&n| !cluster.datanode(n).map(|d| d.is_alive()).unwrap_or(false))
            {
                return Err(HailError::DeadDatanode(split.locations[0]));
            }
            emit(MapRecord::good(Row::new(vec![Value::Long(
                split.blocks[0] as i64,
            )])));
            let mut stats = TaskStats {
                records: 1,
                ..Default::default()
            };
            stats.ledger.disk_read = self.read_seconds_bytes;
            Ok(stats)
        }

        fn name(&self) -> &str {
            "spread"
        }
    }

    #[test]
    fn failure_slows_down_but_completes() {
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let fmt = SpreadFormat {
            read_seconds_bytes: 95_000_000, // 1 s per read
        };
        let job = MapJob::collecting("fo", (0..64).collect(), &fmt);
        let run = run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(1))
            .unwrap();
        assert_eq!(run.output.len(), 64);
        assert!(run.rerun_count > 0, "some tasks must be lost");
        let slowdown = run.slowdown_percent();
        assert!(slowdown > 0.0, "failure must slow the job: {slowdown}");
        assert!(slowdown < 100.0, "slowdown should be bounded: {slowdown}");
        // All rerun tasks start after the expiry.
        for t in run.with_failure.tasks.iter().filter(|t| t.rerun) {
            assert!(t.node != 1);
            assert!(t.start >= run.failure_time - spec.profile.job_startup_s);
        }
    }

    #[test]
    fn early_failure_loses_more_tasks_than_late() {
        let fmt = SpreadFormat {
            read_seconds_bytes: 95_000_000,
        };
        let mut c1 = DfsCluster::new(4, StorageConfig::default());
        let mut c2 = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let job = MapJob::collecting("fo", (0..64).collect(), &fmt);
        let early = run_map_job_with_failure(
            &mut c1,
            &spec,
            &job,
            FailureScenario {
                node: 0,
                at_progress: 0.1,
                expiry_s: 30.0,
            },
        )
        .unwrap();
        let late = run_map_job_with_failure(
            &mut c2,
            &spec,
            &job,
            FailureScenario {
                node: 0,
                at_progress: 0.9,
                expiry_s: 30.0,
            },
        )
        .unwrap();
        assert!(early.rerun_count > late.rerun_count);
    }

    /// Regression (replay indexing): a format whose split boundaries
    /// change when a node dies. Splits cluster blocks per *live* node,
    /// so killing one node re-clusters every block — the degraded plan
    /// has different (and fewer) splits than the baseline. Replayed
    /// tasks must read the snapshotted baseline splits; indexing the
    /// degraded plan with baseline split indices either dies with
    /// "split vanished" or silently reads the wrong blocks.
    struct ReclusteringFormat;

    impl InputFormat for ReclusteringFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            let mut splits = Vec::new();
            for (j, &node) in live.iter().enumerate() {
                let blocks: Vec<BlockId> = input
                    .iter()
                    .copied()
                    .filter(|&b| b as usize % live.len() == j)
                    .collect();
                if blocks.is_empty() {
                    continue;
                }
                let mut locs = vec![node];
                locs.extend(live.iter().copied().filter(|&n| n != node));
                splits.push(InputSplit::new(blocks, locs));
            }
            Ok(SplitPlan {
                splits,
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: usize,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            if split
                .locations
                .iter()
                .all(|&n| !cluster.datanode(n).map(|d| d.is_alive()).unwrap_or(false))
            {
                return Err(HailError::DeadDatanode(split.locations[0]));
            }
            for &b in &split.blocks {
                emit(MapRecord::good(Row::new(vec![Value::Long(b as i64)])));
            }
            let mut stats = TaskStats {
                records: split.blocks.len() as u64,
                ..Default::default()
            };
            stats.ledger.disk_read = 95_000_000 * split.blocks.len() as u64;
            Ok(stats)
        }

        fn name(&self) -> &str {
            "reclustering"
        }
    }

    #[test]
    fn replay_survives_split_boundaries_changing_under_node_death() {
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let job = MapJob::collecting("shift", (0..16).collect(), &ReclusteringFormat);
        // Early failure: most surviving tasks re-read on the degraded
        // cluster, whose re-derived plan has 3 splits where the
        // baseline had 4 — every baseline index must still resolve.
        let run = run_map_job_with_failure(
            &mut cluster,
            &spec,
            &job,
            FailureScenario {
                node: 0,
                at_progress: 0.1,
                expiry_s: 30.0,
            },
        )
        .expect("replay must use the snapshotted baseline plan, not degraded indices");
        // All 16 blocks exactly once, despite the boundary shift.
        let mut got: Vec<i64> = run
            .output
            .iter()
            .map(|r| match r.get(0).unwrap() {
                Value::Long(v) => *v,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<i64>>());
        // Every rerun read exactly its lost split's blocks (4 per
        // baseline split here), not a reshaped degraded split (which
        // would carry 5-6 blocks after re-clustering to 3 nodes).
        assert!(run.rerun_count > 0);
        for t in run.with_failure.tasks.iter().filter(|t| t.rerun) {
            assert_eq!(t.stats.records, 4, "rerun read the baseline split");
        }
    }

    /// Regression (replay causality): pre-failure tasks replay at
    /// exactly their baseline times even when lost tasks free slots
    /// earlier, and no task that had not started at the failure — a
    /// degraded re-read or a rerun — is ever scheduled before the
    /// failure instant.
    #[test]
    fn replay_never_schedules_post_failure_tasks_before_the_failure() {
        // Block 0 is a 20× longer read than the rest: it straddles the
        // failure on the dead node and is lost, freeing its slot for
        // the replay of that node's short *completed* tasks — which,
        // unpinned, would drift earlier than they really ran.
        struct SkewedFormat;
        impl InputFormat for SkewedFormat {
            fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
                let live = cluster.live_nodes();
                Ok(SplitPlan {
                    splits: input
                        .iter()
                        .map(|&b| {
                            let preferred = live[b as usize % live.len()];
                            let mut locs = vec![preferred];
                            locs.extend(live.iter().copied().filter(|&n| n != preferred));
                            InputSplit::for_block(b, locs)
                        })
                        .collect(),
                    client_cost: Default::default(),
                })
            }
            fn read_split(
                &self,
                _c: &DfsCluster,
                split: &InputSplit,
                _n: usize,
                emit: &mut dyn FnMut(MapRecord),
            ) -> Result<TaskStats> {
                emit(MapRecord::good(Row::new(vec![Value::Long(
                    split.blocks[0] as i64,
                )])));
                let mut stats = TaskStats {
                    records: 1,
                    ..Default::default()
                };
                stats.ledger.disk_read = if split.blocks[0] == 0 {
                    95_000_000 * 20 // 20 s
                } else {
                    95_000_000 // 1 s
                };
                Ok(stats)
            }
            fn name(&self) -> &str {
                "skewed"
            }
        }

        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let job = MapJob::collecting("causal", (0..24).collect(), &SkewedFormat);
        let baseline_snapshot = {
            let c = DfsCluster::new(4, StorageConfig::default());
            run_map_job(&c, &spec, &job).unwrap().report
        };
        let run = run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(0))
            .unwrap();
        let pre_phase = spec.profile.job_startup_s + run.baseline.split_phase_seconds;
        let failure_makespan_t = (run.failure_time - pre_phase).max(0.0);

        let baseline_of = |split: usize| {
            baseline_snapshot
                .tasks
                .iter()
                .find(|t| t.split == split)
                .unwrap()
        };
        for t in &run.with_failure.tasks {
            let base = baseline_of(t.split);
            if t.rerun {
                // Lost tasks restart only after the expiry interval.
                assert!(
                    t.start >= failure_makespan_t,
                    "rerun of split {} at {} precedes the failure at {failure_makespan_t}",
                    t.split,
                    t.start
                );
                continue;
            }
            if base.start >= failure_makespan_t {
                // Had not started at the failure: causality demands it
                // cannot start before the failure instant in the replay.
                assert!(
                    t.start >= failure_makespan_t,
                    "split {} replayed at {} before the failure at {failure_makespan_t}",
                    t.split,
                    t.start
                );
            } else {
                // Started before the failure: the replay must reproduce
                // its real execution exactly — even on the dead node,
                // where the lost long task's slot frees up early.
                assert_eq!(
                    (t.start, t.end),
                    (base.start, base.end),
                    "pre-failure split {} drifted from its baseline schedule",
                    t.split
                );
            }
        }
    }

    /// Regression (baseline-plan threading): the failover path derives
    /// `splits()` exactly twice — once for the pre-failure snapshot
    /// (threaded into the baseline run) and once for the degraded
    /// re-plan after the kill. Before the snapshot was threaded
    /// through, the baseline run derived its own copy and the job paid
    /// three derivations.
    #[test]
    fn baseline_plan_is_derived_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct CountingFormat {
            inner: SpreadFormat,
            derivations: AtomicUsize,
        }

        impl InputFormat for CountingFormat {
            fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
                self.derivations.fetch_add(1, Ordering::Relaxed);
                self.inner.splits(cluster, input)
            }
            fn read_split(
                &self,
                cluster: &DfsCluster,
                split: &InputSplit,
                task_node: DatanodeId,
                emit: &mut dyn FnMut(MapRecord),
            ) -> Result<TaskStats> {
                self.inner.read_split(cluster, split, task_node, emit)
            }
            fn name(&self) -> &str {
                "counting"
            }
        }

        let fmt = CountingFormat {
            inner: SpreadFormat {
                read_seconds_bytes: 95_000_000,
            },
            derivations: AtomicUsize::new(0),
        };
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let job = MapJob::collecting("once", (0..32).collect(), &fmt);
        let run = run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(1))
            .unwrap();
        assert_eq!(run.output.len(), 32);
        assert_eq!(
            fmt.derivations.load(Ordering::Relaxed),
            2,
            "exactly one baseline derivation (the snapshot) plus one degraded re-plan"
        );
    }

    #[test]
    fn node_left_dead_after_run() {
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let fmt = SpreadFormat {
            read_seconds_bytes: 1000,
        };
        let job = MapJob::collecting("fo", (0..8).collect(), &fmt);
        run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(2)).unwrap();
        assert!(!cluster.datanode(2).unwrap().is_alive());
    }
}
