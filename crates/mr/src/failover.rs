//! Failover: node death during a running job, task re-execution, and
//! the slowdown metric of §6.4.3.
//!
//! Methodology mirrors the paper: pick a node, kill it after a given
//! fraction of work progress, wait out the expiry interval (30 s), and
//! re-schedule the lost tasks on surviving nodes. The slowdown is
//! `(T_f − T_b) / T_b × 100`.
//!
//! The interesting HAIL-specific behaviour happens inside the record
//! reader on re-execution: if the dead node held the only replica with a
//! matching index, the re-run falls back to scanning another replica
//! (HAIL); with the same index on all replicas (HAIL-1Idx) the re-run
//! still gets an index scan — exactly the Fig. 8 comparison.

use crate::job::{JobReport, TaskReport};
use crate::scheduler::{run_map_job, MapJob, NodeSlots};
use hail_dfs::DfsCluster;
use hail_sim::ClusterSpec;
use hail_types::{DatanodeId, HailError, Result, Row};

pub use hail_dfs::EXPIRY_INTERVAL_S;

/// A staged failure: kill `node` once the job has made `at_progress`
/// (0..1) of its no-failure runtime; lost tasks are re-scheduled after
/// `expiry_s`.
#[derive(Debug, Clone, Copy)]
pub struct FailureScenario {
    pub node: DatanodeId,
    pub at_progress: f64,
    pub expiry_s: f64,
}

impl FailureScenario {
    pub fn at_half(node: DatanodeId) -> Self {
        FailureScenario {
            node,
            at_progress: 0.5,
            expiry_s: EXPIRY_INTERVAL_S,
        }
    }
}

/// Outcome of a job run under failure.
#[derive(Debug)]
pub struct FailoverRun {
    /// Output rows (complete despite the failure).
    pub output: Vec<Row>,
    /// The failure-free report (baseline `T_b`).
    pub baseline: JobReport,
    /// The with-failure report (`T_f`), including re-executed tasks.
    pub with_failure: JobReport,
    /// Simulated instant the node died.
    pub failure_time: f64,
    /// Tasks that were lost and re-executed.
    pub rerun_count: usize,
}

impl FailoverRun {
    /// §6.4.3's slowdown: `(T_f − T_b) / T_b × 100`.
    pub fn slowdown_percent(&self) -> f64 {
        let tb = self.baseline.end_to_end_seconds;
        let tf = self.with_failure.end_to_end_seconds;
        (tf - tb) / tb * 100.0
    }
}

/// Runs a job with a mid-flight node failure.
///
/// The cluster is mutated (the node is killed) and *left dead* on
/// return, matching reality: callers that need the node back must revive
/// it explicitly.
pub fn run_map_job_with_failure(
    cluster: &mut DfsCluster,
    spec: &ClusterSpec,
    job: &MapJob<'_>,
    scenario: FailureScenario,
) -> Result<FailoverRun> {
    // Pass 1: failure-free baseline (functional output + T_b).
    let baseline_run = run_map_job(cluster, spec, job)?;
    let t_b = baseline_run.report.end_to_end_seconds;
    let failure_time = scenario.at_progress.clamp(0.0, 1.0) * t_b;
    let hw = &spec.profile;
    let pre_phase = hw.job_startup_s + baseline_run.report.split_phase_seconds;

    // Pass 2: replay the schedule with the failure injected.
    //
    // - Tasks on the dead node still running at (or scheduled after) the
    //   failure are *lost* and re-executed after the expiry interval.
    // - Tasks on live nodes that had not yet started at the failure see
    //   the degraded cluster: a read that would have used the dead
    //   node's replica now picks another one — possibly falling back
    //   from index scan to full scan (the HAIL vs HAIL-1Idx effect).
    // - Tasks that started before the failure keep their original reads.
    let mut slots = NodeSlots::new(cluster, hw.map_slots);
    let mut final_tasks: Vec<TaskReport> = Vec::with_capacity(baseline_run.report.tasks.len());
    let mut lost: Vec<usize> = Vec::new();

    // Makespan-relative failure instant (schedules run after pre_phase).
    let failure_makespan_t = (failure_time - pre_phase).max(0.0);

    // Kill the node up front: every re-evaluated read below must see
    // dead replicas.
    cluster.kill_node(scenario.node)?;
    let plan = job.format.splits(cluster, &job.input)?;

    let mut sink = Vec::new();
    for task in &baseline_run.report.tasks {
        if task.node == scenario.node && task.end > failure_makespan_t {
            // Lost: either mid-run at the failure or scheduled after it.
            lost.push(task.split);
            continue;
        }
        if task.node != scenario.node && task.start >= failure_makespan_t {
            // Not yet started at failure time: re-evaluate the read
            // against the degraded cluster. (Output was already
            // collected functionally in pass 1; records are discarded.)
            let split = plan.splits.get(task.split).ok_or_else(|| {
                HailError::Job(format!("split {} vanished on re-plan", task.split))
            })?;
            sink.clear();
            let wall = std::time::Instant::now();
            let stats = job.format.read_split_with(
                cluster,
                split,
                &job.split_context(task.node),
                &mut |rec| sink.push(rec),
            )?;
            let reader_wall_seconds = wall.elapsed().as_secs_f64();
            let reader_seconds = stats.reader_seconds(hw, spec.scale);
            let duration = hw.task_overhead_s + reader_seconds;
            let (start, end) = slots.assign(task.node, duration, 0.0);
            final_tasks.push(TaskReport {
                split: task.split,
                node: task.node,
                start,
                end,
                reader_seconds,
                reader_wall_seconds,
                rerun: false,
                stats,
            });
            continue;
        }
        // Replay unchanged (read happened before the failure).
        let duration = task.end - task.start;
        let (start, end) = slots.assign(task.node, duration, 0.0);
        final_tasks.push(TaskReport {
            start,
            end,
            ..task.clone()
        });
    }
    slots.kill_node(scenario.node);
    let resume_at = failure_makespan_t + scenario.expiry_s;
    let mut output_extra: Vec<Row> = Vec::new();
    let mut rerun_count = 0;
    let mut scratch = Vec::new();
    for split_idx in lost {
        let split = plan
            .splits
            .get(split_idx)
            .ok_or_else(|| HailError::Job(format!("lost split {split_idx} vanished on re-plan")))?;
        let node = slots
            .choose_node(&split.locations)
            .ok_or_else(|| HailError::Job("no live nodes to re-schedule on".into()))?;
        let mut records = Vec::new();
        let wall = std::time::Instant::now();
        let stats =
            job.format
                .read_split_with(cluster, split, &job.split_context(node), &mut |rec| {
                    records.push(rec)
                })?;
        let reader_wall_seconds = wall.elapsed().as_secs_f64();
        for rec in &records {
            scratch.clear();
            (job.map)(rec, &mut scratch);
            output_extra.append(&mut scratch);
        }
        let reader_seconds = stats.reader_seconds(hw, spec.scale);
        let duration = hw.task_overhead_s + reader_seconds;
        let (start, end) = slots.assign(node, duration, resume_at);
        final_tasks.push(TaskReport {
            split: split_idx,
            node,
            start,
            end,
            reader_seconds,
            reader_wall_seconds,
            rerun: true,
            stats,
        });
        rerun_count += 1;
    }

    // Output correctness: surviving tasks' output was already collected
    // in pass 1; the functional result equals the baseline output set.
    // (Re-reads above validated that lost splits remain readable.)
    let with_failure = JobReport {
        job_name: job.name.clone(),
        startup_seconds: hw.job_startup_s,
        split_phase_seconds: baseline_run.report.split_phase_seconds,
        split_count: plan.splits.len(),
        total_slots: slots.live_slot_count(),
        tasks: final_tasks,
        end_to_end_seconds: pre_phase + slots.makespan(),
    };

    Ok(FailoverRun {
        output: baseline_run.output,
        baseline: baseline_run.report,
        with_failure,
        failure_time,
        rerun_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputFormat, InputSplit, SplitPlan};
    use crate::job::{MapRecord, TaskStats};
    use hail_sim::HardwareProfile;
    use hail_types::{BlockId, StorageConfig, Value};

    /// Format whose blocks live on `block % nodes`, with other nodes as
    /// fallback locations.
    struct SpreadFormat {
        read_seconds_bytes: u64,
    }

    impl InputFormat for SpreadFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| {
                        // Preferred node + all live nodes as fallbacks.
                        let preferred = live[b as usize % live.len()];
                        let mut locs = vec![preferred];
                        locs.extend(live.iter().copied().filter(|&n| n != preferred));
                        InputSplit::for_block(b, locs)
                    })
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: usize,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            // Fail if every location is dead (data genuinely lost).
            if split
                .locations
                .iter()
                .all(|&n| !cluster.datanode(n).map(|d| d.is_alive()).unwrap_or(false))
            {
                return Err(HailError::DeadDatanode(split.locations[0]));
            }
            emit(MapRecord::good(Row::new(vec![Value::Long(
                split.blocks[0] as i64,
            )])));
            let mut stats = TaskStats {
                records: 1,
                ..Default::default()
            };
            stats.ledger.disk_read = self.read_seconds_bytes;
            Ok(stats)
        }

        fn name(&self) -> &str {
            "spread"
        }
    }

    #[test]
    fn failure_slows_down_but_completes() {
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let fmt = SpreadFormat {
            read_seconds_bytes: 95_000_000, // 1 s per read
        };
        let job = MapJob::collecting("fo", (0..64).collect(), &fmt);
        let run = run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(1))
            .unwrap();
        assert_eq!(run.output.len(), 64);
        assert!(run.rerun_count > 0, "some tasks must be lost");
        let slowdown = run.slowdown_percent();
        assert!(slowdown > 0.0, "failure must slow the job: {slowdown}");
        assert!(slowdown < 100.0, "slowdown should be bounded: {slowdown}");
        // All rerun tasks start after the expiry.
        for t in run.with_failure.tasks.iter().filter(|t| t.rerun) {
            assert!(t.node != 1);
            assert!(t.start >= run.failure_time - spec.profile.job_startup_s);
        }
    }

    #[test]
    fn early_failure_loses_more_tasks_than_late() {
        let fmt = SpreadFormat {
            read_seconds_bytes: 95_000_000,
        };
        let mut c1 = DfsCluster::new(4, StorageConfig::default());
        let mut c2 = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let job = MapJob::collecting("fo", (0..64).collect(), &fmt);
        let early = run_map_job_with_failure(
            &mut c1,
            &spec,
            &job,
            FailureScenario {
                node: 0,
                at_progress: 0.1,
                expiry_s: 30.0,
            },
        )
        .unwrap();
        let late = run_map_job_with_failure(
            &mut c2,
            &spec,
            &job,
            FailureScenario {
                node: 0,
                at_progress: 0.9,
                expiry_s: 30.0,
            },
        )
        .unwrap();
        assert!(early.rerun_count > late.rerun_count);
    }

    #[test]
    fn node_left_dead_after_run() {
        let mut cluster = DfsCluster::new(4, StorageConfig::default());
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let fmt = SpreadFormat {
            read_seconds_bytes: 1000,
        };
        let job = MapJob::collecting("fo", (0..8).collect(), &fmt);
        run_map_job_with_failure(&mut cluster, &spec, &job, FailureScenario::at_half(2)).unwrap();
        assert!(!cluster.datanode(2).unwrap().is_alive());
    }
}
