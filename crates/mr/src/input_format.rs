//! The `InputFormat` abstraction: how a job's input is cut into splits
//! and how one split is read on a worker.
//!
//! Hadoop's `InputFormat`/`RecordReader` UDFs are the paper's integration
//! point: HAIL ships `HailInputFormat` + `HailRecordReader` and changes
//! nothing else in the engine (§4.3). The engine in this crate likewise
//! only sees this trait; the Hadoop, Hadoop++ and HAIL behaviours live in
//! `hail-exec`, routed through its cost-based `QueryPlanner` and
//! `AccessPath` implementations.

use crate::job::{MapRecord, TaskStats};
use hail_dfs::DfsCluster;
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, Result};

/// A logical input split: one map task's input.
///
/// Default Hadoop splitting maps one split to one block; HAIL's
/// `HailSplitting` maps one split to *many* blocks colocated on one
/// datanode (§4.3), shrinking the task count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Blocks this split covers.
    pub blocks: Vec<BlockId>,
    /// Preferred nodes to schedule the task on (split locations).
    pub locations: Vec<DatanodeId>,
}

impl InputSplit {
    pub fn new(blocks: Vec<BlockId>, locations: Vec<DatanodeId>) -> Self {
        InputSplit { blocks, locations }
    }

    /// Single-block split (default Hadoop splitting).
    pub fn for_block(block: BlockId, locations: Vec<DatanodeId>) -> Self {
        InputSplit {
            blocks: vec![block],
            locations,
        }
    }
}

/// The split plan returned by an `InputFormat`: the splits plus the
/// physical cost the JobClient paid computing them (namenode lookups are
/// free main-memory operations; Hadoop++ additionally reads a block
/// header per block here).
#[derive(Debug, Clone, Default)]
pub struct SplitPlan {
    pub splits: Vec<InputSplit>,
    pub client_cost: CostLedger,
}

/// Execution context the scheduler hands a split read: where the map
/// task runs, and how much worker parallelism the engine grants the
/// read for fanning out independent block reads within the split.
///
/// This is the seam through which `run_map_job` drives the execution
/// layer's parallel executor without depending on it: formats that can
/// parallelize (the planner-backed ones in `hail-exec`) honor
/// `parallelism`; simple formats ignore it via the default
/// [`InputFormat::read_split_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitContext {
    /// The node the map task runs on; remote reads charge the network.
    pub task_node: DatanodeId,
    /// Worker threads the read may use for independent blocks of the
    /// split. `None` defers to the format's own executor
    /// configuration (which defaults to the `HAIL_PARALLELISM`
    /// environment override); `Some(1)` forces a serial read.
    pub parallelism: Option<usize>,
}

impl SplitContext {
    /// A read on `task_node` with the format's own parallelism policy.
    pub fn on(task_node: DatanodeId) -> Self {
        SplitContext {
            task_node,
            parallelism: None,
        }
    }

    /// Builder-style parallelism override.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = Some(parallelism.max(1));
        self
    }
}

/// One entry of a job-level batch read: an input split plus the
/// execution context the scheduler's assignment phase gave it.
#[derive(Debug, Clone)]
pub struct SplitTask<'a> {
    pub split: &'a InputSplit,
    pub ctx: SplitContext,
}

/// A fully buffered split read, as produced by
/// [`InputFormat::read_split_batch`]: the emitted records in emission
/// order, the task statistics, and the measured wall clock the read
/// took (telemetry only — never fed into simulated accounting).
#[derive(Debug)]
pub struct SplitRead {
    pub records: Vec<MapRecord>,
    pub stats: TaskStats,
    pub reader_wall_seconds: f64,
}

/// How a job's input is split and read. Implemented by the Hadoop
/// baseline, Hadoop++, and HAIL in `hail-exec`.
///
/// Formats must be `Send + Sync`: a [`crate::manager::JobManager`]
/// runs concurrent jobs on worker threads, each holding a shared
/// reference to its job's format. All implementors are immutable
/// configuration over thread-safe infrastructure (the planner state
/// they touch is behind `RwLock`s), so the bounds cost nothing.
pub trait InputFormat: Send + Sync {
    /// Computes input splits for the given input blocks.
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan>;

    /// Reads one split on behalf of a map task running on `task_node`,
    /// emitting each record to `emit`. Returns the task's physical
    /// statistics.
    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats>;

    /// Reads one split under an explicit [`SplitContext`] — the entry
    /// point the scheduler uses, so job-level parallelism reaches the
    /// format. Formats without intra-split parallelism inherit this
    /// default, which ignores the parallelism hint. On a **successful**
    /// read, the emitted records, their order, and the returned
    /// statistics must be identical to [`InputFormat::read_split`]
    /// whatever the context; on a failing read only the returned error
    /// is guaranteed parallelism-independent — a parallel read may
    /// have emitted fewer of the pre-failure records than a serial one
    /// (never different ones, never out of order) by the time the
    /// error surfaces.
    fn read_split_with(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        ctx: &SplitContext,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        self.read_split(cluster, split, ctx.task_node, emit)
    }

    /// Reads a whole batch of splits — the scheduler's execution phase.
    ///
    /// Returns one [`SplitRead`] per task **in batch order**, each
    /// holding exactly what [`InputFormat::read_split_with`] would have
    /// produced for that task. `job_parallelism` is the job-level
    /// overlap budget (`None` defers to the format's own policy, which
    /// for the planner-backed formats is the `HAIL_JOB_PARALLELISM`
    /// environment override); formats without job-level overlap inherit
    /// this sequential default.
    ///
    /// Contract for overriding implementations: on a **successful**
    /// batch, records, their order, every statistic, and any
    /// cross-query state the reads mutate (plan caches, selectivity
    /// feedback) must be bit-for-bit identical at every
    /// `job_parallelism` — overlap may only change the measured
    /// `reader_wall_seconds`. In particular, state folded per split
    /// (selectivity feedback) must be absorbed **in batch order after
    /// all reads complete**, never in completion order. On a failing
    /// batch only the returned error — the lowest-indexed failing
    /// task's — is guaranteed parallelism-independent: as with
    /// [`InputFormat::read_split_with`]'s failing reads, overlapped
    /// workers may have raced ahead of the failure and planned (and
    /// cached plans for) splits a sequential run would never have
    /// reached.
    fn read_split_batch(
        &self,
        cluster: &DfsCluster,
        batch: &[SplitTask<'_>],
        _job_parallelism: Option<usize>,
    ) -> Result<Vec<SplitRead>> {
        batch
            .iter()
            .map(|t| {
                let mut records = Vec::new();
                let wall = std::time::Instant::now();
                let stats =
                    self.read_split_with(cluster, t.split, &t.ctx, &mut |rec| records.push(rec))?;
                Ok(SplitRead {
                    records,
                    stats,
                    reader_wall_seconds: wall.elapsed().as_secs_f64(),
                })
            })
            .collect()
    }

    /// Estimated record-reader seconds for one split — the scheduler's
    /// assignment phase prices slot occupancy with this *before* any
    /// read happens, so node choices decouple from read results.
    /// `None` (the default) lets the scheduler fall back to a uniform
    /// block-count heuristic; the planner-backed formats answer from
    /// memoized `BlockPlan`s. Must be cheap and must not perturb any
    /// cross-query state or counters.
    fn estimate_split(&self, _cluster: &DfsCluster, _split: &InputSplit) -> Option<f64> {
        None
    }

    /// Batch form of [`InputFormat::estimate_split`]: estimates for a
    /// whole job's splits in one call, so a format can derive
    /// query-level state (the canonical filter shape, feedback
    /// lookups) **once** instead of once per split. `None` (the
    /// default) or a result of the wrong length makes the scheduler
    /// fall back to per-split [`InputFormat::estimate_split`] calls.
    /// Same contract: cheap, and must not perturb any cross-query
    /// state or counters.
    fn estimate_splits(&self, _cluster: &DfsCluster, _splits: &[InputSplit]) -> Option<Vec<f64>> {
        None
    }

    /// A short name for reports ("Hadoop", "Hadoop++", "HAIL").
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_constructors() {
        let s = InputSplit::for_block(7, vec![1, 2]);
        assert_eq!(s.blocks, vec![7]);
        let m = InputSplit::new(vec![1, 2, 3], vec![0]);
        assert_eq!(m.blocks.len(), 3);
        assert_eq!(m.locations, vec![0]);
    }

    #[test]
    fn default_split_plan_is_empty() {
        let p = SplitPlan::default();
        assert!(p.splits.is_empty());
        assert_eq!(p.client_cost.disk_read, 0);
    }

    #[test]
    fn split_context_builders() {
        let ctx = SplitContext::on(3);
        assert_eq!(ctx.task_node, 3);
        assert_eq!(ctx.parallelism, None);
        assert_eq!(ctx.with_parallelism(0).parallelism, Some(1));
        assert_eq!(SplitContext::on(0).with_parallelism(4).parallelism, Some(4));
    }
}
