//! The `InputFormat` abstraction: how a job's input is cut into splits
//! and how one split is read on a worker.
//!
//! Hadoop's `InputFormat`/`RecordReader` UDFs are the paper's integration
//! point: HAIL ships `HailInputFormat` + `HailRecordReader` and changes
//! nothing else in the engine (§4.3). The engine in this crate likewise
//! only sees this trait; the Hadoop, Hadoop++ and HAIL behaviours live in
//! `hail-exec`, routed through its cost-based `QueryPlanner` and
//! `AccessPath` implementations.

use crate::job::{MapRecord, TaskStats};
use hail_dfs::DfsCluster;
use hail_sim::CostLedger;
use hail_types::{BlockId, DatanodeId, Result};

/// A logical input split: one map task's input.
///
/// Default Hadoop splitting maps one split to one block; HAIL's
/// `HailSplitting` maps one split to *many* blocks colocated on one
/// datanode (§4.3), shrinking the task count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InputSplit {
    /// Blocks this split covers.
    pub blocks: Vec<BlockId>,
    /// Preferred nodes to schedule the task on (split locations).
    pub locations: Vec<DatanodeId>,
}

impl InputSplit {
    pub fn new(blocks: Vec<BlockId>, locations: Vec<DatanodeId>) -> Self {
        InputSplit { blocks, locations }
    }

    /// Single-block split (default Hadoop splitting).
    pub fn for_block(block: BlockId, locations: Vec<DatanodeId>) -> Self {
        InputSplit {
            blocks: vec![block],
            locations,
        }
    }
}

/// The split plan returned by an `InputFormat`: the splits plus the
/// physical cost the JobClient paid computing them (namenode lookups are
/// free main-memory operations; Hadoop++ additionally reads a block
/// header per block here).
#[derive(Debug, Clone, Default)]
pub struct SplitPlan {
    pub splits: Vec<InputSplit>,
    pub client_cost: CostLedger,
}

/// How a job's input is split and read. Implemented by the Hadoop
/// baseline, Hadoop++, and HAIL in `hail-core`.
pub trait InputFormat {
    /// Computes input splits for the given input blocks.
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan>;

    /// Reads one split on behalf of a map task running on `task_node`,
    /// emitting each record to `emit`. Returns the task's physical
    /// statistics.
    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats>;

    /// A short name for reports ("Hadoop", "Hadoop++", "HAIL").
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_constructors() {
        let s = InputSplit::for_block(7, vec![1, 2]);
        assert_eq!(s.blocks, vec![7]);
        let m = InputSplit::new(vec![1, 2, 3], vec![0]);
        assert_eq!(m.blocks.len(), 3);
        assert_eq!(m.locations, vec![0]);
    }

    #[test]
    fn default_split_plan_is_empty() {
        let p = SplitPlan::default();
        assert!(p.splits.is_empty());
        assert_eq!(p.client_cost.disk_read, 0);
    }
}
