//! Job-level types: records, task statistics, job reports.

use hail_sim::{CostLedger, HardwareProfile, ScaleFactor};
use hail_types::{AccessPathKind, DatanodeId, Row};
use std::collections::BTreeMap;
use std::fmt;

/// One record handed to the map function.
///
/// Mirrors the `HailRecord` of §4.1: a (possibly projected) row plus a
/// flag marking bad records, which HAIL passes through to the map
/// function untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct MapRecord {
    pub row: Row,
    /// True if this record came from the block's bad-record section; the
    /// row then holds a single string value with the raw line.
    pub bad: bool,
}

impl MapRecord {
    pub fn good(row: Row) -> Self {
        MapRecord { row, bad: false }
    }

    pub fn bad(line: String) -> Self {
        MapRecord {
            row: Row::new(vec![hail_types::Value::Str(line)]),
            bad: true,
        }
    }
}

/// Per-access-path block counts: how many blocks of a task (or job)
/// were served by each physical access path.
///
/// Filled by the execution layer's `AccessPath` implementations, so the
/// scheduler and experiment reports can show *how* data was read without
/// re-deriving replica or index choices themselves.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PathCounts(BTreeMap<AccessPathKind, u64>);

impl PathCounts {
    /// Records one block read via `kind`.
    pub fn record(&mut self, kind: AccessPathKind) {
        *self.0.entry(kind).or_insert(0) += 1;
    }

    /// Blocks read via `kind`.
    pub fn get(&self, kind: AccessPathKind) -> u64 {
        self.0.get(&kind).copied().unwrap_or(0)
    }

    /// Total blocks recorded.
    pub fn total(&self) -> u64 {
        self.0.values().sum()
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &PathCounts) {
        for (&k, &n) in &other.0 {
            *self.0.entry(k).or_insert(0) += n;
        }
    }

    /// Iterates (kind, count) pairs in kind order.
    pub fn iter(&self) -> impl Iterator<Item = (AccessPathKind, u64)> + '_ {
        self.0.iter().map(|(&k, &n)| (k, n))
    }
}

impl fmt::Display for PathCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, n) in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{k}×{n}")?;
            first = false;
        }
        if first {
            f.write_str("(none)")?;
        }
        Ok(())
    }
}

/// One block's observed selectivity on a single filter column: of
/// `total` rows in the block, `matched` satisfied the query's bounds on
/// `column`.
///
/// Recorded by the access paths that can attribute their row counts to
/// one column (index scans always can; a full scan only when the query
/// filters a single column), and aggregated into the execution layer's
/// selectivity-feedback store after each split — the adaptive loop that
/// corrects mispriced static priors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectivityObservation {
    /// 0-based filter column the observation is about.
    pub column: usize,
    /// Predicate class: true when the query filtered this column with an
    /// equality predicate, false for range bounds. Feedback is
    /// aggregated per (column, class) so broad range scans don't poison
    /// the estimates needle lookups are priced with.
    pub eq: bool,
    /// Rows of the block satisfying the query's bounds on `column`.
    pub matched: u64,
    /// Rows in the block.
    pub total: u64,
}

/// What one map task's record reader did, as reported by the
/// `InputFormat`.
#[derive(Debug, Clone, Default)]
pub struct TaskStats {
    /// Physical activity of the read (disk, seeks, CPU, remote bytes).
    pub ledger: CostLedger,
    /// True if the access pattern is latency-bound (index lookup: read
    /// index, seek, read partitions, post-filter) rather than a streaming
    /// scan; priced serially instead of pipelined.
    pub serial_pricing: bool,
    /// Records emitted to the map function.
    pub records: u64,
    /// True if this task had to fall back to a full scan because no
    /// replica with a matching index was reachable.
    pub fell_back_to_scan: bool,
    /// Which access path served each block of this task's split.
    pub paths: PathCounts,
    /// Bytes of persisted sidecar extension indexes (bitmaps, inverted
    /// lists) read from replicas to serve this task.
    pub sidecar_bytes_read: u64,
    /// Per-block, per-column observed selectivities, for the planner's
    /// feedback store.
    pub selectivity: Vec<SelectivityObservation>,
    /// Block plans this task obtained from the memoized plan cache
    /// (zero cost-model evaluations each). Only counted when a cache is
    /// configured; with no cache both counters stay zero even though
    /// every block is freshly priced.
    pub plan_cache_hits: u64,
    /// Block plans this task had to price freshly because the cache was
    /// cold or invalidated. Zero (not "all blocks") when no cache is
    /// configured — see [`TaskStats::plan_cache_hits`].
    pub plan_cache_misses: u64,
    /// Blocks of this task's split skipped entirely (no candidate
    /// enumeration, no read) because a persisted zone-map or Bloom
    /// synopsis proved they contain no matching row.
    pub blocks_pruned: u64,
    /// Bytes of persisted synopsis sidecars consulted to prune this
    /// task's blocks. Kept separate from
    /// [`TaskStats::sidecar_bytes_read`]: synopsis probes replace reads
    /// instead of serving them.
    pub synopsis_bytes_read: u64,
    /// Blocks of this task served by *attaching* to another in-flight
    /// job's decode instead of issuing a physical read (cooperative
    /// scan sharing). The ledger still charges what a solo read would
    /// have — sharing synthesizes identical accounting — so this
    /// counter (and [`TaskStats::shared_bytes_saved`]) is the only
    /// trace that the bytes never hit the simulated disk. Both sharing
    /// counters are telemetry and **excluded from the determinism
    /// contract**: which job of a concurrent batch produces vs.
    /// attaches is a race, so per-job values vary run to run even
    /// though every other stat stays bit-for-bit.
    pub blocks_read_shared: u64,
    /// Ledger `disk_read` bytes of this task's shared-attach blocks —
    /// bytes charged to the ledger that were physically read only once,
    /// by the producing job. See [`TaskStats::blocks_read_shared`].
    pub shared_bytes_saved: u64,
}

impl TaskStats {
    /// The record-reader time of this task on the given hardware.
    pub fn reader_seconds(&self, hw: &HardwareProfile, scale: ScaleFactor) -> f64 {
        if self.serial_pricing {
            self.ledger.serial_seconds(hw, scale)
        } else {
            self.ledger.pipelined_seconds(hw, scale)
        }
    }

    /// Merges another task's stats into this one (multi-block splits).
    ///
    /// Associative, so the parallel executor can merge per-block stats
    /// pairwise — and because it always merges **in split order**
    /// (never completion order), even the one order-sensitive field
    /// (the `selectivity` observation sequence, whose order matters to
    /// the feedback store's decay) is bit-for-bit identical at any
    /// parallelism.
    pub fn merge(&mut self, other: &TaskStats) {
        self.ledger.add(&other.ledger);
        self.serial_pricing |= other.serial_pricing;
        self.records += other.records;
        self.fell_back_to_scan |= other.fell_back_to_scan;
        self.paths.merge(&other.paths);
        self.sidecar_bytes_read += other.sidecar_bytes_read;
        self.selectivity.extend_from_slice(&other.selectivity);
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_cache_misses += other.plan_cache_misses;
        self.blocks_pruned += other.blocks_pruned;
        self.synopsis_bytes_read += other.synopsis_bytes_read;
        self.blocks_read_shared += other.blocks_read_shared;
        self.shared_bytes_saved += other.shared_bytes_saved;
    }
}

/// Per-task outcome recorded by the scheduler.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// Index of the split this task processed.
    pub split: usize,
    /// Node the task ran on.
    pub node: DatanodeId,
    /// Simulated start/end times (seconds from job submission).
    pub start: f64,
    pub end: f64,
    /// Record-reader seconds within the task, in the **simulated**
    /// clock domain: the cost model's price for the summed per-block
    /// work of this split, independent of how many executor workers
    /// performed it. This is the number every `T_ideal`/overhead
    /// computation uses.
    pub reader_seconds: f64,
    /// Measured **wall-clock** seconds this process actually spent
    /// inside the record reader, summed-work *divided* by whatever
    /// speedup the parallel executor achieved. Telemetry only: it must
    /// never feed the simulated accounting (mixing the domains is what
    /// would drive overhead negative once readers run in parallel).
    pub reader_wall_seconds: f64,
    /// True if the task is a re-execution after a failure.
    pub rerun: bool,
    pub stats: TaskStats,
}

/// The full accounting of one job execution.
#[derive(Debug, Clone)]
pub struct JobReport {
    pub job_name: String,
    /// Fixed job startup (JobClient staging etc.).
    pub startup_seconds: f64,
    /// Time the JobClient spent computing splits (Hadoop++ pays header
    /// reads here).
    pub split_phase_seconds: f64,
    /// Scheduled map tasks (including re-executions).
    pub tasks: Vec<TaskReport>,
    /// Number of input splits.
    pub split_count: usize,
    /// Total cluster map slots used for scheduling.
    pub total_slots: usize,
    /// End-to-end simulated job runtime.
    pub end_to_end_seconds: f64,
    /// Measured **wall-clock** seconds the job spent queued in a
    /// [`crate::manager::JobManager`] before it was admitted — zero for
    /// solo runs. Telemetry only, like
    /// [`TaskReport::reader_wall_seconds`]: it lives in the measured
    /// domain, never feeds the simulated accounting, and is the one
    /// report field (besides the per-task wall clocks) allowed to vary
    /// between a managed run and a solo run of the same job.
    pub queue_wait_seconds: f64,
}

impl JobReport {
    /// Average record-reader time across tasks (the paper's Fig. 6b/7b
    /// metric), in seconds — **simulated** clock, i.e. the summed
    /// per-block work as priced by the cost model, never the measured
    /// wall clock of a parallel reader.
    pub fn avg_reader_seconds(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks.iter().map(|t| t.reader_seconds).sum::<f64>() / self.tasks.len() as f64
    }

    /// Total simulated record-reader work across all tasks (summed, not
    /// overlapped): the job's reader *work*, as distinct from the
    /// elapsed wall clock in [`JobReport::reader_wall_seconds`].
    pub fn total_reader_seconds(&self) -> f64 {
        self.tasks.iter().map(|t| t.reader_seconds).sum()
    }

    /// Measured wall-clock seconds this process spent inside record
    /// readers, across all tasks. With intra-split executor parallelism
    /// above 1 this drops below [`JobReport::total_reader_seconds`]
    /// (the work overlaps); the two are deliberately separate so the
    /// paper-scale accounting below never mixes domains.
    pub fn reader_wall_seconds(&self) -> f64 {
        self.tasks.iter().map(|t| t.reader_wall_seconds).sum()
    }

    /// The paper's ideal execution time (§6.4.1):
    /// `#MapTasks / #ParallelMapTasks × Avg(T_RecordReader)`.
    ///
    /// Computed entirely in the simulated domain from
    /// [`JobReport::avg_reader_seconds`]; executor parallelism neither
    /// shrinks it (it is *work*, not elapsed time) nor inflates the
    /// overhead below.
    pub fn ideal_seconds(&self) -> f64 {
        if self.total_slots == 0 {
            return 0.0;
        }
        let waves = self.tasks.len() as f64 / self.total_slots as f64;
        waves * self.avg_reader_seconds()
    }

    /// The paper's framework overhead: `T_end-to-end − T_ideal`.
    ///
    /// Both operands live in the simulated domain (`end_to_end_seconds`
    /// comes from the slot pools pricing the same summed reader work),
    /// so parallel executor runs report the identical, non-negative
    /// overhead of the serial run. Mixing in the measured
    /// [`JobReport::reader_wall_seconds`] would understate `T_ideal`
    /// and, conversely, a wall-clock end-to-end against summed reader
    /// work would go negative — which is why both stay out of this
    /// formula. The floor at zero only guards the fractional-waves
    /// approximation for pathologically uneven task durations.
    pub fn overhead_seconds(&self) -> f64 {
        (self.end_to_end_seconds - self.ideal_seconds()).max(0.0)
    }

    /// Number of map tasks (including reruns).
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Tasks that fell back to a full scan.
    pub fn fallback_count(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| t.stats.fell_back_to_scan)
            .count()
    }

    /// Block plans served from the planner's memoized cache across all
    /// tasks (each hit skipped a full candidate-pricing pass).
    pub fn plan_cache_hits(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.plan_cache_hits).sum()
    }

    /// Block plans priced freshly across all tasks.
    pub fn plan_cache_misses(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.plan_cache_misses).sum()
    }

    /// Blocks skipped by synopsis pruning across all tasks (no
    /// candidate enumeration, no read).
    pub fn blocks_pruned(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.blocks_pruned).sum()
    }

    /// Bytes of persisted synopsis sidecars consulted across all tasks.
    pub fn synopsis_bytes_read(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.synopsis_bytes_read).sum()
    }

    /// Blocks served by attaching to another job's in-flight decode
    /// across all tasks (cooperative scan sharing). Telemetry only —
    /// see [`TaskStats::blocks_read_shared`] for why this is excluded
    /// from the per-job determinism contract.
    pub fn blocks_read_shared(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.blocks_read_shared).sum()
    }

    /// Ledger bytes charged for shared-attach blocks that were
    /// physically read only once, by the producing job.
    pub fn shared_bytes_saved(&self) -> u64 {
        self.tasks.iter().map(|t| t.stats.shared_bytes_saved).sum()
    }

    /// Aggregated access-path usage across all tasks — how the job's
    /// blocks were physically read, as chosen by the planner layer.
    pub fn path_counts(&self) -> PathCounts {
        let mut total = PathCounts::default();
        for t in &self.tasks {
            total.merge(&t.stats.paths);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::Value;

    fn report_with(reader_times: &[f64], slots: usize) -> JobReport {
        JobReport {
            job_name: "t".into(),
            startup_seconds: 5.0,
            split_phase_seconds: 1.0,
            tasks: reader_times
                .iter()
                .enumerate()
                .map(|(i, &rr)| TaskReport {
                    split: i,
                    node: 0,
                    start: 0.0,
                    end: rr,
                    reader_seconds: rr,
                    reader_wall_seconds: rr / 4.0, // e.g. a 4-worker read
                    rerun: false,
                    stats: TaskStats::default(),
                })
                .collect(),
            split_count: reader_times.len(),
            total_slots: slots,
            end_to_end_seconds: 100.0,
            queue_wait_seconds: 0.0,
        }
    }

    #[test]
    fn ideal_formula() {
        let r = report_with(&[2.0, 4.0], 2);
        // avg rr = 3, waves = 1 → ideal = 3.
        assert!((r.ideal_seconds() - 3.0).abs() < 1e-12);
        assert!((r.overhead_seconds() - 97.0).abs() < 1e-12);
    }

    /// The two clock domains stay separate: a parallel reader's shorter
    /// wall clock is reported, but the simulated ideal/overhead numbers
    /// are computed from summed reader work and cannot go negative
    /// because readers overlapped in real time.
    #[test]
    fn wall_clock_never_leaks_into_simulated_overhead() {
        let r = report_with(&[2.0, 4.0], 2);
        assert!((r.total_reader_seconds() - 6.0).abs() < 1e-12);
        // The helper models a 4-worker executor: wall = work / 4.
        assert!((r.reader_wall_seconds() - 1.5).abs() < 1e-12);
        // ideal_seconds is unchanged by the wall-clock speedup…
        assert!((r.ideal_seconds() - 3.0).abs() < 1e-12);
        // …and overhead stays the simulated difference, non-negative.
        assert!(r.overhead_seconds() >= 0.0);
        assert!((r.overhead_seconds() - 97.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report() {
        let r = report_with(&[], 2);
        assert_eq!(r.avg_reader_seconds(), 0.0);
        assert_eq!(r.ideal_seconds(), 0.0);
        assert_eq!(r.task_count(), 0);
    }

    #[test]
    fn map_record_constructors() {
        let g = MapRecord::good(Row::new(vec![Value::Int(1)]));
        assert!(!g.bad);
        let b = MapRecord::bad("broken line".into());
        assert!(b.bad);
        assert_eq!(b.row.get(0).unwrap().as_str(), Some("broken line"));
    }

    #[test]
    fn stats_merge() {
        let mut a = TaskStats {
            records: 3,
            plan_cache_hits: 1,
            ..Default::default()
        };
        let b = TaskStats {
            records: 4,
            serial_pricing: true,
            fell_back_to_scan: true,
            plan_cache_hits: 2,
            plan_cache_misses: 5,
            blocks_pruned: 2,
            synopsis_bytes_read: 64,
            selectivity: vec![SelectivityObservation {
                column: 3,
                eq: false,
                matched: 10,
                total: 40,
            }],
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.records, 7);
        assert!(a.serial_pricing);
        assert!(a.fell_back_to_scan);
        assert_eq!(a.plan_cache_hits, 3);
        assert_eq!(a.plan_cache_misses, 5);
        assert_eq!(a.blocks_pruned, 2);
        assert_eq!(a.synopsis_bytes_read, 64);
        assert_eq!(a.selectivity, b.selectivity);
    }

    #[test]
    fn reader_seconds_pricing_modes() {
        use hail_sim::HardwareProfile;
        let mut stats = TaskStats::default();
        stats.ledger.disk_read = 50_000_000;
        stats.ledger.scan_cpu = 50_000_000;
        let hw = HardwareProfile::physical();
        let serial = TaskStats {
            serial_pricing: true,
            ..stats.clone()
        };
        assert!(
            serial.reader_seconds(&hw, ScaleFactor::unit())
                > stats.reader_seconds(&hw, ScaleFactor::unit())
        );
    }
}
