//! The shared chunked drive loop: the single place the engine turns a
//! batch of assigned splits into completed reads.
//!
//! Three drive sites used to open-code the same `chunks(64)` loop with
//! their own chunk-index bookkeeping — the normal execution phase of
//! [`crate::scheduler::run_map_job`], and the failover re-evaluation
//! and rerun passes of [`crate::failover::run_map_job_with_failure`].
//! They now all call [`ChunkedDrive::run`], so the chunk-boundary
//! discipline (fixed boundaries, per-chunk record drop, split-order
//! delivery) cannot silently diverge between them.

use crate::inflight::InterestGuard;
use crate::input_format::{InputFormat, SplitRead, SplitTask};
use crate::scheduler::MapJob;
use hail_dfs::DfsCluster;
use hail_types::{BlockId, Result};

/// How many splits the drive loop reads per
/// [`InputFormat::read_split_batch`] call. Bounds peak memory: a
/// chunk's buffered records are consumed and dropped before the next
/// chunk is read, so a job over thousands of splits holds at most one
/// chunk's raw records — not the whole job's — while still giving the
/// job-level pool plenty of splits to overlap and steal. The boundary
/// is a fixed constant, independent of any parallelism knob, so chunk
/// barriers (including the per-chunk feedback absorption inside the
/// batch read) fall identically at every setting.
pub const SPLIT_BATCH_CHUNK: usize = 64;

/// The shared drive loop over one batch of assigned splits.
///
/// Feeds the batch to [`InputFormat::read_split_batch`] in fixed
/// [`SPLIT_BATCH_CHUNK`]-sized chunks and hands each completed
/// [`SplitRead`] — tagged with its batch-wide index — to the caller's
/// sink, strictly in batch order. The sink consumes each read (maps
/// its records, collects its statistics) before the next chunk is
/// read, preserving the O(chunk) peak-memory bound at every call site.
pub struct ChunkedDrive<'a> {
    cluster: &'a DfsCluster,
    format: &'a dyn InputFormat,
    job_parallelism: Option<usize>,
    interest: Option<&'a InterestGuard>,
}

impl<'a> ChunkedDrive<'a> {
    /// A drive loop reading through `format` with an explicit job-level
    /// overlap bound (see [`MapJob::job_parallelism`]).
    pub fn new(
        cluster: &'a DfsCluster,
        format: &'a dyn InputFormat,
        job_parallelism: Option<usize>,
    ) -> Self {
        ChunkedDrive {
            cluster,
            format,
            job_parallelism,
            interest: None,
        }
    }

    /// The drive loop for one job: its format and its job-level
    /// parallelism override.
    pub fn for_job(cluster: &'a DfsCluster, job: &MapJob<'a>) -> Self {
        ChunkedDrive::new(cluster, job.format, job.job_parallelism)
    }

    /// Attaches a manager-registered interest guard: each chunk's block
    /// interest is released as soon as that chunk's reads are consumed,
    /// so cross-job drain signals (scan-share eviction) track the drive
    /// loop's actual progress instead of whole-job completion.
    pub fn with_interest(mut self, interest: Option<&'a InterestGuard>) -> Self {
        self.interest = interest;
        self
    }

    /// Drives `batch` to completion, invoking `sink(index, read)` for
    /// every split — `index` is the position within `batch` — strictly
    /// in batch order. Errors from the batch read surface immediately;
    /// chunks past a failing one are never read.
    pub fn run(
        &self,
        batch: &[SplitTask<'_>],
        mut sink: impl FnMut(usize, SplitRead),
    ) -> Result<()> {
        for (chunk_idx, chunk) in batch.chunks(SPLIT_BATCH_CHUNK).enumerate() {
            let chunk_start = chunk_idx * SPLIT_BATCH_CHUNK;
            let reads = self
                .format
                .read_split_batch(self.cluster, chunk, self.job_parallelism)?;
            for (offset, read) in reads.into_iter().enumerate() {
                sink(chunk_start + offset, read);
            }
            if let Some(guard) = self.interest {
                let blocks: Vec<BlockId> = chunk
                    .iter()
                    .flat_map(|t| t.split.blocks.iter().copied())
                    .collect();
                guard.release_blocks(&blocks);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input_format::{InputSplit, SplitContext, SplitPlan};
    use crate::job::{MapRecord, TaskStats};
    use hail_types::{BlockId, DatanodeId, HailError, Row, StorageConfig, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// Records the size of every `read_split_batch` call it serves.
    struct ChunkRecordingFormat {
        batch_sizes: Mutex<Vec<usize>>,
        fail_at: Option<u64>,
    }

    impl ChunkRecordingFormat {
        fn new() -> Self {
            ChunkRecordingFormat {
                batch_sizes: Mutex::new(Vec::new()),
                fail_at: None,
            }
        }
    }

    impl InputFormat for ChunkRecordingFormat {
        fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
            let live = cluster.live_nodes();
            Ok(SplitPlan {
                splits: input
                    .iter()
                    .map(|&b| InputSplit::for_block(b, vec![live[b as usize % live.len()]]))
                    .collect(),
                client_cost: Default::default(),
            })
        }

        fn read_split(
            &self,
            _cluster: &DfsCluster,
            split: &InputSplit,
            _task_node: DatanodeId,
            emit: &mut dyn FnMut(MapRecord),
        ) -> Result<TaskStats> {
            if self.fail_at == Some(split.blocks[0]) {
                return Err(HailError::Job(format!("block {}", split.blocks[0])));
            }
            emit(MapRecord::good(Row::new(vec![Value::Long(
                split.blocks[0] as i64,
            )])));
            Ok(TaskStats {
                records: 1,
                ..Default::default()
            })
        }

        fn read_split_batch(
            &self,
            cluster: &DfsCluster,
            batch: &[SplitTask<'_>],
            _job_parallelism: Option<usize>,
        ) -> Result<Vec<SplitRead>> {
            self.batch_sizes.lock().unwrap().push(batch.len());
            batch
                .iter()
                .map(|t| {
                    let mut records = Vec::new();
                    let stats = self.read_split(cluster, t.split, t.ctx.task_node, &mut |rec| {
                        records.push(rec)
                    })?;
                    Ok(SplitRead {
                        records,
                        stats,
                        reader_wall_seconds: 0.0,
                    })
                })
                .collect()
        }

        fn name(&self) -> &str {
            "chunk-recording"
        }
    }

    fn batch_of(splits: &[InputSplit]) -> Vec<SplitTask<'_>> {
        splits
            .iter()
            .map(|split| SplitTask {
                split,
                ctx: SplitContext::on(0),
            })
            .collect()
    }

    /// The drive loop never hands the format more than one chunk of
    /// splits at a time, and the boundaries fall at fixed multiples of
    /// the chunk size regardless of batch length.
    #[test]
    fn chunks_are_bounded_and_fixed() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let fmt = ChunkRecordingFormat::new();
        let plan = fmt.splits(&cluster, &(0..150).collect::<Vec<_>>()).unwrap();
        let batch = batch_of(&plan.splits);
        let drive = ChunkedDrive::new(&cluster, &fmt, None);
        let mut seen = Vec::new();
        drive
            .run(&batch, |i, read| seen.push((i, read.records.len())))
            .unwrap();
        assert_eq!(
            *fmt.batch_sizes.lock().unwrap(),
            vec![
                SPLIT_BATCH_CHUNK,
                SPLIT_BATCH_CHUNK,
                150 - 2 * SPLIT_BATCH_CHUNK
            ]
        );
        // The sink sees every split exactly once, in batch order, with
        // batch-wide indices.
        assert_eq!(seen.len(), 150);
        for (pos, (i, records)) in seen.iter().enumerate() {
            assert_eq!(*i, pos);
            assert_eq!(*records, 1);
        }
    }

    /// A read failure stops the drive at its chunk: later chunks are
    /// never requested, and the sink never sees a partial chunk.
    #[test]
    fn failure_stops_at_the_failing_chunk() {
        let cluster = DfsCluster::new(2, StorageConfig::default());
        let mut fmt = ChunkRecordingFormat::new();
        fmt.fail_at = Some(70); // second chunk
        let plan = fmt.splits(&cluster, &(0..200).collect::<Vec<_>>()).unwrap();
        let batch = batch_of(&plan.splits);
        let drive = ChunkedDrive::new(&cluster, &fmt, None);
        let sank = AtomicUsize::new(0);
        let err = drive
            .run(&batch, |_, _| {
                sank.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap_err();
        assert!(err.to_string().contains("block 70"));
        // Only the first (complete) chunk reached the sink; the third
        // chunk was never read.
        assert_eq!(sank.load(Ordering::Relaxed), SPLIT_BATCH_CHUNK);
        assert_eq!(fmt.batch_sizes.lock().unwrap().len(), 2);
    }
}
