//! # hail-mr
//!
//! A deterministic Hadoop-MapReduce-like execution engine:
//!
//! - [`input_format`] — the `InputFormat` UDF surface (splits + readers)
//! - [`job`] — records, task statistics, job reports (T_ideal, overhead)
//! - [`scheduler`] — locality-aware wave scheduling with Hadoop's
//!   per-task overhead model
//! - [`driver`] — the shared chunked drive loop every execution pass
//!   (scheduler and both failover passes) reads splits through
//! - [`manager`] — FIFO admission of concurrent jobs with a bounded
//!   in-flight limit (`HAIL_MAX_CONCURRENT_JOBS`)
//! - [`inflight`] — cross-job in-flight block interest
//!   ([`InFlightBlocks`]): which blocks admitted jobs are still going
//!   to read, with drain notifications the execution layer's
//!   scan-share registry keys its decoded-block retention on
//! - [`shuffle`] — grouped reduce with costed shuffle
//! - [`failover`] — mid-job node death, task re-execution, slowdown
//!
//! [`TaskStats`] is also the adaptive planner's sensor: each task
//! carries per-block [`SelectivityObservation`]s (fed back into the
//! execution layer's selectivity estimates after each split) and
//! plan-cache hit/miss counters, which [`JobReport::plan_cache_hits`]
//! and [`JobReport::plan_cache_misses`] aggregate per job.
//!
//! Split reads run under a [`SplitContext`]: the scheduler grants each
//! read the node it runs on plus a worker-parallelism budget
//! ([`MapJob::parallelism`], or the `HAIL_PARALLELISM` environment
//! override), which the execution layer's parallel executor uses to fan
//! a split's independent block reads across threads. Since the
//! job-overlap change, [`run_map_job`] itself is two-phase: an
//! *assignment* phase chooses nodes for every split up front from
//! planner estimates ([`InputFormat::estimate_split`]), and an
//! *execution* phase that drives the whole batch through the shared
//! [`ChunkedDrive`] loop — fixed [`SPLIT_BATCH_CHUNK`]-sized calls to
//! [`InputFormat::read_split_batch`], which the planner-backed formats
//! fan across a job-level work-stealing pool
//! ([`MapJob::job_parallelism`], or the `HAIL_JOB_PARALLELISM`
//! environment override). Parallelism at either level only changes
//! real wall clock — results, their order, and every simulated-clock
//! figure are identical at any setting, and
//! [`TaskReport::reader_wall_seconds`] reports the measured wall time
//! separately from the simulated [`TaskReport::reader_seconds`].
//!
//! Above single-job execution sits the [`JobManager`]: FIFO admission
//! of many jobs with at most `HAIL_MAX_CONCURRENT_JOBS` in flight.
//! Each managed job's output and report stay bit-for-bit identical to
//! a solo run at any interleaving — concurrency only changes measured
//! wall clock and the [`JobReport::queue_wait_seconds`] telemetry.

#![forbid(unsafe_code)]

pub mod driver;
pub mod failover;
pub mod inflight;
pub mod input_format;
pub mod job;
pub mod manager;
pub mod scheduler;
pub mod shuffle;

pub use driver::{ChunkedDrive, SPLIT_BATCH_CHUNK};
pub use failover::{run_map_job_with_failure, FailoverRun, FailureScenario};
pub use inflight::{InFlightBlocks, InterestGuard};
pub use input_format::{InputFormat, InputSplit, SplitContext, SplitPlan, SplitRead, SplitTask};
pub use job::{JobReport, MapRecord, PathCounts, SelectivityObservation, TaskReport, TaskStats};
pub use manager::{JobManager, MAX_CONCURRENT_JOBS_ENV};
pub use scheduler::{run_map_job, run_map_job_with_interest, JobRun, MapJob};
pub use shuffle::{run_map_reduce_job, MapReduceJob, MapReduceRun};
