//! Hand-rolled workspace source lint enforcing the HAIL concurrency
//! contract (no registry deps, consistent with `crates/compat`).
//!
//! Five rules, each converting a convention PRs 4–9 kept by hand into
//! a CI failure:
//!
//! - **no-raw-sync** — direct `std::sync::{Mutex, RwLock, Condvar}`
//!   use outside `hail-sync` (test code exempt). Every engine lock
//!   must carry a `LockRank`.
//! - **safety-comment** — every `unsafe` token is preceded by a
//!   `// SAFETY:` comment. (The workspace also forbids `unsafe_code`
//!   outright; this rule keeps the doc contract if that ever loosens.)
//! - **knob-registry** — `env::var` reads outside
//!   `hail_core::knobs` (test code exempt). Every `HAIL_*` knob goes
//!   through the one typed table.
//! - **no-lock-unwrap** — `.lock()/.read()/.write()` followed by
//!   `.unwrap()` outside test code: lock poisoning must be recovered
//!   (`hail-sync`'s `acquire`), never propagated.
//! - **doc-sync** — the `LockRank` enum (variants, order,
//!   discriminants) must match the marker-delimited rank table in
//!   ARCHITECTURE.md, and the knob registry must match the
//!   marker-delimited knob table — code and docs cannot drift.
//!
//! The scanner is deliberately lexical: comments and string literals
//! are blanked to spaces (byte offsets preserved) before any rule
//! runs, and `#[cfg(test)] mod` regions are masked by brace tracking.
//! That is exactly enough precision for these rules on this codebase,
//! with zero dependencies.

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule slug (e.g. `no-raw-sync`).
    pub rule: &'static str,
    /// Path the violation was found in (workspace-relative when the
    /// scan was rooted at the workspace).
    pub file: PathBuf,
    /// 1-based line number (0 for whole-file rules like doc-sync).
    pub line: usize,
    /// What was matched or what drifted.
    pub excerpt: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.excerpt
        )
    }
}

/// Blanks comments, string literals, and char literals to spaces,
/// preserving every byte offset and newline — so rule matches report
/// true line numbers and never fire inside prose or literals.
pub fn strip_code(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'\n' => {
                out[i] = b'\n';
                i += 1;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        out[i] = b'\n';
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                // r"...", r#"..."#, br"..." etc.: skip past the r/b
                // prefix and hashes, then scan to the matching close.
                let mut j = i + 1;
                if b[j] == b'r' {
                    j += 1;
                }
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                j += 1; // opening quote
                while j < b.len() {
                    if b[j] == b'\n' {
                        out[j] = b'\n';
                    } else if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0;
                        while k < b.len() && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            j = k;
                            break;
                        }
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out[i] = b'\n';
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal closes with
                // a quote within a few bytes ('x', '\n', '\u{1F600}');
                // a lifetime ('a, 'static) never closes.
                if let Some(close) = char_literal_close(b, i) {
                    i = close + 1;
                } else {
                    out[i] = b'\'';
                    i += 1;
                }
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("blanking multi-byte chars yields spaces, still UTF-8")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r", r#, br", br# — and must not be part of an identifier
    // (e.g. `for r in ...` or `attr` are not raw strings).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= b.len() || b[j] != b'r' {
            return j < b.len() && b[j] == b'"';
        }
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn char_literal_close(b: &[u8], open: usize) -> Option<usize> {
    let mut j = open + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escape: scan to the closing quote (handles \u{...}).
        j += 1;
        while j < b.len() && b[j] != b'\'' && b[j] != b'\n' {
            j += 1;
        }
        return (j < b.len() && b[j] == b'\'').then_some(j);
    }
    // Unescaped: exactly one char (possibly multi-byte) then a quote.
    let ch_len = utf8_len(b[j]);
    let close = j + ch_len;
    (close < b.len() && b[close] == b'\'').then_some(close)
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b & 0xE0 == 0xC0 => 2,
        b if b & 0xF0 == 0xE0 => 3,
        _ => 4,
    }
}

/// Per-byte mask of `#[cfg(test)]`-gated item regions (brace-tracked
/// from the attribute's following `{`), computed on stripped source.
pub fn test_region_mask(stripped: &str) -> Vec<bool> {
    let b = stripped.as_bytes();
    let mut mask = vec![false; b.len()];
    let mut from = 0;
    while let Some(rel) = stripped[from..].find("#[cfg(test)]") {
        let attr = from + rel;
        // Find the first `{` after the attribute and brace-match it.
        let Some(open_rel) = stripped[attr..].find('{') else {
            break;
        };
        let open = attr + open_rel;
        let mut depth = 0usize;
        let mut end = b.len();
        for (k, &c) in b.iter().enumerate().skip(open) {
            if c == b'{' {
                depth += 1;
            } else if c == b'}' {
                depth -= 1;
                if depth == 0 {
                    end = k + 1;
                    break;
                }
            }
        }
        for m in mask.iter_mut().take(end).skip(attr) {
            *m = true;
        }
        from = end.max(attr + 1);
    }
    mask
}

fn line_of(src: &str, offset: usize) -> usize {
    src.as_bytes()[..offset]
        .iter()
        .filter(|&&c| c == b'\n')
        .count()
        + 1
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-word occurrences of `word` in `stripped`, as byte offsets.
fn word_offsets(stripped: &str, word: &str) -> Vec<usize> {
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = stripped[from..].find(word) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let after = at + word.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            out.push(at);
        }
        from = at + word.len();
    }
    out
}

/// True when `path` is test-adjacent code exempt from the engine-code
/// rules: integration tests, benches, examples, and the lint's own
/// fixtures.
pub fn is_test_path(path: &Path) -> bool {
    path.components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples") | Some("fixtures")
        )
    })
}

/// Rule `no-raw-sync`: direct `std::sync` lock primitives outside
/// `hail-sync` (callers exempt: test code, `crates/sync` itself).
pub fn check_no_raw_sync(path: &Path, stripped: &str, mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    for word in ["Mutex", "RwLock", "Condvar"] {
        for at in word_offsets(stripped, word) {
            if mask.get(at).copied().unwrap_or(false) {
                continue;
            }
            out.push(Violation {
                rule: "no-raw-sync",
                file: path.to_path_buf(),
                line: line_of(stripped, at),
                excerpt: format!("raw std::sync::{word} — wrap it in a ranked hail_sync type"),
            });
        }
    }
    out
}

/// Rule `safety-comment`: every `unsafe` token needs a `// SAFETY:`
/// comment on a directly preceding line (checked against the original
/// source, since comments are blanked in the stripped copy).
pub fn check_safety_comment(path: &Path, original: &str, stripped: &str) -> Vec<Violation> {
    let lines: Vec<&str> = original.lines().collect();
    let mut out = Vec::new();
    for at in word_offsets(stripped, "unsafe") {
        let line = line_of(stripped, at);
        // Walk upward over blank/attribute lines to the nearest prose.
        let mut ok = false;
        for prev in (0..line.saturating_sub(1)).rev() {
            let text = lines[prev].trim();
            if text.is_empty() || text.starts_with("#[") {
                continue;
            }
            ok = text.contains("// SAFETY:");
            break;
        }
        if !ok {
            out.push(Violation {
                rule: "safety-comment",
                file: path.to_path_buf(),
                line,
                excerpt: "unsafe without a preceding // SAFETY: comment".into(),
            });
        }
    }
    out
}

/// Rule `knob-registry`: `env::var` reads outside the central knob
/// registry (test code exempt).
pub fn check_knob_registry(path: &Path, stripped: &str, mask: &[bool]) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = stripped[from..].find("env::var") {
        let at = from + rel;
        from = at + "env::var".len();
        if mask.get(at).copied().unwrap_or(false) {
            continue;
        }
        out.push(Violation {
            rule: "knob-registry",
            file: path.to_path_buf(),
            line: line_of(stripped, at),
            excerpt: "environment read outside hail_core::knobs — register the knob".into(),
        });
    }
    out
}

/// Rule `no-lock-unwrap`: `.lock()/.read()/.write()` with `.unwrap()`
/// chained straight on (whitespace permitted), outside test code.
pub fn check_no_lock_unwrap(path: &Path, stripped: &str, mask: &[bool]) -> Vec<Violation> {
    let b = stripped.as_bytes();
    let mut out = Vec::new();
    for call in [".lock()", ".read()", ".write()"] {
        let mut from = 0;
        while let Some(rel) = stripped[from..].find(call) {
            let at = from + rel;
            from = at + call.len();
            if mask.get(at).copied().unwrap_or(false) {
                continue;
            }
            let mut j = at + call.len();
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if stripped[j..].starts_with(".unwrap()") {
                out.push(Violation {
                    rule: "no-lock-unwrap",
                    file: path.to_path_buf(),
                    line: line_of(stripped, at),
                    excerpt: format!(
                        "{call}.unwrap() — poisoning must be recovered, use hail_sync acquire"
                    ),
                });
            }
        }
    }
    out
}

/// The `(variant, discriminant)` list parsed from the `LockRank` enum
/// in hail-sync's source, declaration order.
pub fn parse_lock_ranks(sync_src: &str) -> Vec<(String, u8)> {
    let stripped = strip_code(sync_src);
    let Some(start) = stripped.find("pub enum LockRank") else {
        return Vec::new();
    };
    let Some(open_rel) = stripped[start..].find('{') else {
        return Vec::new();
    };
    let open = start + open_rel;
    let Some(close_rel) = stripped[open..].find('}') else {
        return Vec::new();
    };
    let body = &stripped[open + 1..open + close_rel];
    let mut out = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        let Some((name, rest)) = line.split_once('=') else {
            continue;
        };
        let name = name.trim();
        let digits: String = rest.chars().filter(|c| c.is_ascii_digit()).collect();
        if !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            if let Ok(d) = digits.parse::<u8>() {
                out.push((name.to_string(), d));
            }
        }
    }
    out
}

/// Knob names (`HAIL_*`) parsed from the registry source, declaration
/// order.
pub fn parse_knob_names(knobs_src: &str) -> Vec<String> {
    // Names live in string literals, so parse the original source: a
    // `name: "HAIL_...",` field per registered knob.
    let mut out = Vec::new();
    for line in knobs_src.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name: \"") {
            if let Some(end) = rest.find('"') {
                let name = &rest[..end];
                if name.starts_with("HAIL_") {
                    out.push(name.to_string());
                }
            }
        }
    }
    out
}

/// Extracts the text between `<!-- {marker}:begin -->` and
/// `<!-- {marker}:end -->` in a markdown document.
pub fn marked_section<'a>(doc: &'a str, marker: &str) -> Option<&'a str> {
    let begin = format!("<!-- {marker}:begin -->");
    let end = format!("<!-- {marker}:end -->");
    let s = doc.find(&begin)? + begin.len();
    let e = doc[s..].find(&end)? + s;
    Some(&doc[s..e])
}

/// Backticked names in column `col` (0-based) of a markdown table
/// section, row order, skipping the header and separator rows.
fn table_column_names(section: &str, col: usize) -> Vec<String> {
    let mut out = Vec::new();
    for line in section.lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = line.trim_matches('|').split('|').map(str::trim).collect();
        let Some(cell) = cells.get(col) else { continue };
        let Some(start) = cell.find('`') else {
            continue;
        };
        let rest = &cell[start + 1..];
        let Some(len) = rest.find('`') else { continue };
        out.push(rest[..len].to_string());
    }
    out
}

/// Rule `doc-sync`: the ARCHITECTURE.md rank table must list exactly
/// the `LockRank` variants, in declaration (descending-rank) order,
/// with matching discriminants; the knob table must list exactly the
/// registered knobs.
pub fn check_doc_sync(sync_src: &str, knobs_src: &str, arch_md: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let doc_path = PathBuf::from("ARCHITECTURE.md");

    let ranks = parse_lock_ranks(sync_src);
    if ranks.is_empty() {
        out.push(Violation {
            rule: "doc-sync",
            file: PathBuf::from("crates/sync/src/lib.rs"),
            line: 0,
            excerpt: "could not parse the LockRank enum".into(),
        });
    }
    match marked_section(arch_md, "lock-rank-table") {
        None => out.push(Violation {
            rule: "doc-sync",
            file: doc_path.clone(),
            line: 0,
            excerpt: "missing <!-- lock-rank-table:begin/end --> markers".into(),
        }),
        Some(section) => {
            let doc_names = table_column_names(section, 1);
            let code_names: Vec<String> = ranks.iter().map(|(n, _)| n.clone()).collect();
            if doc_names != code_names {
                out.push(Violation {
                    rule: "doc-sync",
                    file: doc_path.clone(),
                    line: 0,
                    excerpt: format!(
                        "rank table drift: doc lists {doc_names:?}, LockRank declares {code_names:?}"
                    ),
                });
            }
            let doc_ranks = table_column_names(section, 0);
            let code_ranks: Vec<String> = ranks.iter().map(|(_, d)| d.to_string()).collect();
            if doc_ranks != code_ranks {
                out.push(Violation {
                    rule: "doc-sync",
                    file: doc_path.clone(),
                    line: 0,
                    excerpt: format!(
                        "rank numbers drift: doc lists {doc_ranks:?}, LockRank declares {code_ranks:?}"
                    ),
                });
            }
        }
    }

    let knob_names = parse_knob_names(knobs_src);
    match marked_section(arch_md, "knob-table") {
        None => out.push(Violation {
            rule: "doc-sync",
            file: doc_path,
            line: 0,
            excerpt: "missing <!-- knob-table:begin/end --> markers".into(),
        }),
        Some(section) => {
            let doc_knobs = table_column_names(section, 0);
            if doc_knobs != knob_names {
                out.push(Violation {
                    rule: "doc-sync",
                    file: doc_path,
                    line: 0,
                    excerpt: format!(
                        "knob table drift: doc lists {doc_knobs:?}, registry declares {knob_names:?}"
                    ),
                });
            }
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, skipping build output
/// and VCS internals. Results are sorted for deterministic reports.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | ".github") {
                continue;
            }
            rust_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Runs every rule over the workspace rooted at `root`, returning all
/// violations (empty = clean). Per-file rules skip what their
/// contracts exempt: `crates/sync` for no-raw-sync,
/// `crates/core/src/knobs.rs` for knob-registry, test paths and
/// `#[cfg(test)]` regions for the engine-code rules.
pub fn scan_workspace(root: &Path) -> Vec<Violation> {
    let mut files = Vec::new();
    rust_files(root, &mut files);
    let mut out = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        if is_test_path(&rel) {
            continue;
        }
        let Ok(original) = std::fs::read_to_string(path) else {
            continue;
        };
        let stripped = strip_code(&original);
        let mask = test_region_mask(&stripped);
        let in_sync_crate = rel.starts_with("crates/sync");
        let is_knobs = rel == Path::new("crates/core/src/knobs.rs");
        if !in_sync_crate {
            out.extend(check_no_raw_sync(&rel, &stripped, &mask));
        }
        out.extend(check_safety_comment(&rel, &original, &stripped));
        if !is_knobs {
            out.extend(check_knob_registry(&rel, &stripped, &mask));
        }
        out.extend(check_no_lock_unwrap(&rel, &stripped, &mask));
    }

    let sync_src = std::fs::read_to_string(root.join("crates/sync/src/lib.rs"));
    let knobs_src = std::fs::read_to_string(root.join("crates/core/src/knobs.rs"));
    let arch_md = std::fs::read_to_string(root.join("ARCHITECTURE.md"));
    match (sync_src, knobs_src, arch_md) {
        (Ok(s), Ok(k), Ok(a)) => out.extend(check_doc_sync(&s, &k, &a)),
        _ => out.push(Violation {
            rule: "doc-sync",
            file: root.to_path_buf(),
            line: 0,
            excerpt: "missing crates/sync/src/lib.rs, crates/core/src/knobs.rs, or ARCHITECTURE.md"
                .into(),
        }),
    }
    out
}
