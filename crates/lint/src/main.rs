//! `hail-lint`: scan the workspace for concurrency-contract
//! violations and exit non-zero if any are found. Run from CI as
//! `cargo run -p hail-lint` (an explicit root may be passed as the
//! first argument).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let violations = hail_lint::scan_workspace(&root);
    if violations.is_empty() {
        println!("hail-lint: workspace clean");
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        eprintln!("{v}");
    }
    eprintln!("hail-lint: {} violation(s)", violations.len());
    ExitCode::FAILURE
}
