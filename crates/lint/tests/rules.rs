//! Per-rule fixture tests (one seeded violation each, caught; clean
//! code passes) plus the self-test that the real workspace is clean.
//!
//! Fixtures live in `tests/fixtures/` — cargo does not compile files
//! in test subdirectories, so they can contain deliberately bad code.

use hail_lint::{
    check_doc_sync, check_knob_registry, check_no_lock_unwrap, check_no_raw_sync,
    check_safety_comment, marked_section, parse_knob_names, parse_lock_ranks, scan_workspace,
    strip_code, test_region_mask,
};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = std::fs::read_to_string(&path).unwrap();
    (path, src)
}

fn run_file_rules(name: &str) -> Vec<hail_lint::Violation> {
    let (path, src) = fixture(name);
    let stripped = strip_code(&src);
    let mask = test_region_mask(&stripped);
    let mut out = Vec::new();
    out.extend(check_no_raw_sync(&path, &stripped, &mask));
    out.extend(check_safety_comment(&path, &src, &stripped));
    out.extend(check_knob_registry(&path, &stripped, &mask));
    out.extend(check_no_lock_unwrap(&path, &stripped, &mask));
    out
}

#[test]
fn stripper_blanks_comments_strings_and_preserves_offsets() {
    let src = "let a = \"Mutex\"; // Mutex\nlet b = r#\"RwLock\"#; /* Condvar\n*/ let c = 'x';\n";
    let stripped = strip_code(src);
    assert_eq!(stripped.len(), src.len());
    assert_eq!(
        stripped.matches('\n').count(),
        src.matches('\n').count(),
        "newlines must survive for line numbering"
    );
    for word in ["Mutex", "RwLock", "Condvar"] {
        assert!(
            !stripped.contains(word),
            "{word} leaked through: {stripped}"
        );
    }
    assert!(stripped.contains("let a ="));
    assert!(stripped.contains("let c ="));
}

#[test]
fn raw_sync_fixture_is_caught() {
    let violations = run_file_rules("raw_sync.rs");
    let raw: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-raw-sync")
        .collect();
    // Mutex, RwLock, Condvar each appear in the use and in the struct.
    assert!(raw.len() >= 3, "expected ≥3 no-raw-sync hits, got {raw:?}");
    for word in ["Mutex", "RwLock", "Condvar"] {
        assert!(
            raw.iter().any(|v| v.excerpt.contains(word)),
            "missing {word} hit in {raw:?}"
        );
    }
    // unwrap_or_else recovery is NOT a no-lock-unwrap violation.
    assert!(violations.iter().all(|v| v.rule != "no-lock-unwrap"));
}

#[test]
fn missing_safety_fixture_is_caught() {
    let violations = run_file_rules("missing_safety.rs");
    let hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "safety-comment")
        .collect();
    assert_eq!(hits.len(), 1, "{violations:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn env_read_fixture_is_caught() {
    let violations = run_file_rules("env_read.rs");
    let hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "knob-registry")
        .collect();
    assert_eq!(hits.len(), 1, "{violations:?}");
    assert_eq!(hits[0].line, 3);
}

#[test]
fn lock_unwrap_fixture_is_caught() {
    let violations = run_file_rules("lock_unwrap.rs");
    let hits: Vec<_> = violations
        .iter()
        .filter(|v| v.rule == "no-lock-unwrap")
        .collect();
    // .lock().unwrap(), .read().unwrap(), and the multi-line
    // .write()\n.unwrap() chain must all be caught.
    assert_eq!(hits.len(), 3, "{violations:?}");
}

#[test]
fn clean_fixture_passes_every_rule() {
    let violations = run_file_rules("clean.rs");
    assert!(violations.is_empty(), "{violations:?}");
}

const GOOD_SYNC: &str = r#"
pub enum LockRank {
    A = 2,
    B = 1,
    C = 0,
}
"#;

const GOOD_KNOBS: &str = r#"
pub const X: Knob = Knob {
    name: "HAIL_X",
    kind: KnobKind::Count,
    default: "1",
    doc: "d",
};
"#;

const GOOD_DOC: &str = "\
# arch
<!-- lock-rank-table:begin -->
| Rank | Variant | Guards |
|---|---|---|
| `2` | `A` | a |
| `1` | `B` | b |
| `0` | `C` | c |
<!-- lock-rank-table:end -->
<!-- knob-table:begin -->
| Knob | Default | Effect |
|---|---|---|
| `HAIL_X` | 1 | d |
<!-- knob-table:end -->
";

#[test]
fn doc_sync_passes_when_tables_match() {
    assert_eq!(
        parse_lock_ranks(GOOD_SYNC),
        vec![
            ("A".to_string(), 2),
            ("B".to_string(), 1),
            ("C".to_string(), 0),
        ]
    );
    assert_eq!(parse_knob_names(GOOD_KNOBS), vec!["HAIL_X".to_string()]);
    let violations = check_doc_sync(GOOD_SYNC, GOOD_KNOBS, GOOD_DOC);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn doc_sync_catches_reordered_ranks_and_missing_knobs() {
    let reordered = GOOD_DOC.replace(
        "| `2` | `A` | a |\n| `1` | `B` | b |",
        "| `1` | `B` | b |\n| `2` | `A` | a |",
    );
    let violations = check_doc_sync(GOOD_SYNC, GOOD_KNOBS, &reordered);
    assert!(
        violations.iter().any(|v| v.excerpt.contains("drift")),
        "{violations:?}"
    );

    let missing_knob = GOOD_DOC.replace("| `HAIL_X` | 1 | d |\n", "");
    let violations = check_doc_sync(GOOD_SYNC, GOOD_KNOBS, &missing_knob);
    assert!(
        violations
            .iter()
            .any(|v| v.excerpt.contains("knob table drift")),
        "{violations:?}"
    );

    let no_markers = "# arch, tables deleted";
    let violations = check_doc_sync(GOOD_SYNC, GOOD_KNOBS, no_markers);
    assert_eq!(violations.len(), 2, "{violations:?}");
}

#[test]
fn marked_section_extracts_between_markers() {
    let body = marked_section(GOOD_DOC, "knob-table").unwrap();
    assert!(body.contains("HAIL_X"));
    assert!(!body.contains("Variant"));
    assert!(marked_section(GOOD_DOC, "absent").is_none());
}

#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let violations = scan_workspace(&root);
    assert!(
        violations.is_empty(),
        "the workspace must satisfy its own lint:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn real_lock_rank_enum_parses() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let sync = std::fs::read_to_string(root.join("crates/sync/src/lib.rs")).unwrap();
    let ranks = parse_lock_ranks(&sync);
    assert_eq!(ranks.len(), 10, "{ranks:?}");
    assert_eq!(ranks[0], ("ManagerSlot".to_string(), 9));
    assert_eq!(ranks[9], ("ShareRegistry".to_string(), 0));
    // Declaration order is descending rank.
    let discs: Vec<u8> = ranks.iter().map(|(_, d)| *d).collect();
    let mut sorted = discs.clone();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    assert_eq!(discs, sorted);

    let knobs = std::fs::read_to_string(root.join("crates/core/src/knobs.rs")).unwrap();
    assert_eq!(parse_knob_names(&knobs).len(), 7);
}
