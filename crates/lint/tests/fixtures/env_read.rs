// Fixture: an ad-hoc HAIL_* environment read outside the registry.
pub fn sneaky_knob() -> bool {
    std::env::var("HAIL_SNEAKY").is_ok()
}
