// Fixture: engine code that satisfies every rule.
use hail_sync::{LockRank, OrderedMutex};

pub struct Good {
    // "Mutex" in a comment or string is fine: the scanner strips both.
    state: OrderedMutex<u32>,
}

pub fn make() -> Good {
    Good {
        state: OrderedMutex::new(LockRank::MapScratch, "fixture-state", 0),
    }
}

pub fn bump(g: &Good) -> u32 {
    let mut v = g.state.acquire();
    *v += 1;
    let label = "a Mutex by name only";
    let _ = label;
    *v
}

// SAFETY: this block is empty; the comment satisfies the rule.
pub fn annotated() {
    let raw = r"RwLock in a raw string";
    let _ = raw;
}

#[cfg(test)]
mod tests {
    use std::sync::Mutex;

    #[test]
    fn test_code_may_use_raw_locks() {
        let m = Mutex::new(1u32);
        assert_eq!(*m.lock().unwrap(), 1);
        let _ = std::env::var("HAIL_TEST_ONLY");
    }
}
