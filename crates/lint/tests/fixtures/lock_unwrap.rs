// Fixture: lock acquisitions that propagate poisoning via unwrap.
pub fn drain(m: &hail_sync_stand_in::Mu) -> u32 {
    let a = *m.inner.lock().unwrap();
    let b = *m.table.read().unwrap();
    let c = *m
        .table
        .write()
        .unwrap();
    a + b + c
}
