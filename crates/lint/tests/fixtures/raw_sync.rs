// Fixture: direct std::sync lock primitives in engine code.
use std::sync::{Condvar, Mutex, RwLock};

pub struct Bad {
    state: Mutex<u32>,
    table: RwLock<u32>,
    wake: Condvar,
}

pub fn peek(b: &Bad) -> u32 {
    let _ = &b.wake;
    *b.table.read().unwrap_or_else(|e| e.into_inner()) + *b.state.lock().unwrap_or_else(|e| e.into_inner())
}
