//! Simulated time primitives: slot pools for wave scheduling.
//!
//! The MapReduce engine simulates task execution by assigning tasks to
//! map slots; a [`SlotPool`] tracks when each slot becomes free so the
//! scheduler can compute wave structure and the job makespan without any
//! wall-clock dependence.

/// A pool of executor slots, each busy until some simulated instant.
#[derive(Debug, Clone)]
pub struct SlotPool {
    busy_until: Vec<f64>,
}

impl SlotPool {
    /// Creates a pool of `slots` slots, all free at time 0.
    pub fn new(slots: usize) -> Self {
        SlotPool {
            busy_until: vec![0.0; slots],
        }
    }

    /// Creates a pool whose slots become free at the given times.
    pub fn from_times(busy_until: Vec<f64>) -> Self {
        SlotPool { busy_until }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.busy_until.len()
    }

    /// True if the pool has no slots.
    pub fn is_empty(&self) -> bool {
        self.busy_until.is_empty()
    }

    /// Index of the slot that frees up first.
    pub fn earliest_slot(&self) -> Option<usize> {
        self.busy_until
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
    }

    /// When the given slot becomes free.
    pub fn free_at(&self, slot: usize) -> f64 {
        self.busy_until[slot]
    }

    /// Runs a task of `duration` seconds on `slot`, not starting before
    /// `not_before`. Returns `(start, end)` simulated times.
    pub fn assign(&mut self, slot: usize, duration: f64, not_before: f64) -> (f64, f64) {
        let start = self.busy_until[slot].max(not_before);
        let end = start + duration;
        self.busy_until[slot] = end;
        (start, end)
    }

    /// Runs a task on the earliest-free slot. Returns
    /// `(slot, start, end)`.
    pub fn assign_earliest(&mut self, duration: f64, not_before: f64) -> (usize, f64, f64) {
        let slot = self.earliest_slot().expect("empty slot pool");
        let (start, end) = self.assign(slot, duration, not_before);
        (slot, start, end)
    }

    /// The instant all slots are idle — the makespan of everything
    /// assigned so far.
    pub fn makespan(&self) -> f64 {
        self.busy_until.iter().copied().fold(0.0, f64::max)
    }

    /// Marks a slot unavailable forever (node failure).
    pub fn kill(&mut self, slot: usize) {
        self.busy_until[slot] = f64::INFINITY;
    }

    /// True if the slot has been killed.
    pub fn is_dead(&self, slot: usize) -> bool {
        self.busy_until[slot].is_infinite()
    }

    /// Number of live (non-killed) slots.
    pub fn live_slots(&self) -> usize {
        self.busy_until.iter().filter(|t| t.is_finite()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waves_form_naturally() {
        // 2 slots, 5 tasks of 10 s each → makespan 30 s (3 waves).
        let mut pool = SlotPool::new(2);
        for _ in 0..5 {
            pool.assign_earliest(10.0, 0.0);
        }
        assert_eq!(pool.makespan(), 30.0);
    }

    #[test]
    fn not_before_delays_start() {
        let mut pool = SlotPool::new(1);
        let (start, end) = pool.assign(0, 5.0, 100.0);
        assert_eq!(start, 100.0);
        assert_eq!(end, 105.0);
        // A later task starts when the slot frees.
        let (start, _) = pool.assign(0, 1.0, 0.0);
        assert_eq!(start, 105.0);
    }

    #[test]
    fn earliest_slot_selection() {
        let mut pool = SlotPool::from_times(vec![10.0, 3.0, 7.0]);
        assert_eq!(pool.earliest_slot(), Some(1));
        let (slot, start, _) = pool.assign_earliest(1.0, 0.0);
        assert_eq!(slot, 1);
        assert_eq!(start, 3.0);
    }

    #[test]
    fn killed_slots_never_chosen() {
        let mut pool = SlotPool::new(2);
        pool.kill(0);
        assert!(pool.is_dead(0));
        assert_eq!(pool.live_slots(), 1);
        let (slot, _, _) = pool.assign_earliest(1.0, 0.0);
        assert_eq!(slot, 1);
    }

    #[test]
    fn empty_pool() {
        let pool = SlotPool::new(0);
        assert!(pool.is_empty());
        assert_eq!(pool.earliest_slot(), None);
        assert_eq!(pool.makespan(), 0.0);
    }
}
