//! Cluster specifications: node count, hardware profile, data scaling.

use crate::cost::ScaleFactor;
use crate::profile::HardwareProfile;

/// A homogeneous cluster of worker nodes plus dedicated master nodes
/// (namenode and JobTracker run off the worker count, as the paper's EC2
/// setups allocate extra nodes for them).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Number of worker nodes (each runs a datanode + TaskTracker).
    pub nodes: usize,
    /// Hardware of every worker node.
    pub profile: HardwareProfile,
    /// Logical-vs-materialized data scaling for experiments.
    pub scale: ScaleFactor,
    /// Delay-scheduling window (Zaharia et al. \[34\], referenced in
    /// §4.3): a task waits up to this many seconds for a slot on a
    /// preferred node before accepting a non-local one. `f64::INFINITY`
    /// (the default) means strict locality — always wait for a
    /// preferred node.
    pub locality_delay_s: f64,
}

impl ClusterSpec {
    pub fn new(nodes: usize, profile: HardwareProfile) -> Self {
        ClusterSpec {
            nodes,
            profile,
            scale: ScaleFactor::unit(),
            locality_delay_s: f64::INFINITY,
        }
    }

    /// Builder-style delay-scheduling override (seconds a task waits
    /// for a local slot before going remote; 0 = pure earliest-slot).
    pub fn with_locality_delay(mut self, seconds: f64) -> Self {
        self.locality_delay_s = seconds;
        self
    }

    /// Builder-style scale override.
    pub fn with_scale(mut self, scale: ScaleFactor) -> Self {
        self.scale = scale;
        self
    }

    /// The paper's 10-node physical cluster.
    pub fn physical_10() -> Self {
        ClusterSpec::new(10, HardwareProfile::physical())
    }

    /// Total map slots across the cluster.
    pub fn total_map_slots(&self) -> usize {
        self.nodes * self.profile.map_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn physical_cluster() {
        let c = ClusterSpec::physical_10();
        assert_eq!(c.nodes, 10);
        assert_eq!(c.total_map_slots(), 20);
    }

    #[test]
    fn scale_override() {
        let c = ClusterSpec::physical_10().with_scale(ScaleFactor(64.0));
        assert_eq!(c.scale.0, 64.0);
    }
}
