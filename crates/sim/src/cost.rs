//! Cost accounting: translating physical activity (bytes, seeks, events)
//! into simulated seconds.
//!
//! Components never measure wall-clock time. Instead they record what
//! they did into a [`CostLedger`]; the models here convert ledgers into
//! seconds using a [`HardwareProfile`] and a [`ScaleFactor`].
//!
//! The central combinator is [`pipelined`]: the HDFS/HAIL upload and the
//! MapReduce scan are staged pipelines (disk → CPU → network → disk …),
//! so the elapsed time of a long transfer is the *bottleneck* stage plus
//! a small leak from imperfect overlap. The leak constant models the
//! synchronization stalls real pipelines exhibit (packet round trips,
//! buffer flushes, JVM pauses) and is shared by every system we compare.

use crate::profile::HardwareProfile;

/// Fraction of the non-bottleneck stage time that leaks into the elapsed
/// time of a pipelined transfer.
pub const PIPELINE_LEAK: f64 = 0.12;

/// Logical-bytes-per-real-byte multiplier.
///
/// Experiments materialize real data at laptop scale (e.g. 256 KB blocks
/// instead of 64 MB); the cost model multiplies measured byte counts by
/// the scale factor so simulated times correspond to paper-scale data.
/// Event counts (seeks, tasks, packets-per-block round trips) are *not*
/// scaled — they are structural.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleFactor(pub f64);

impl ScaleFactor {
    /// Identity scaling (real bytes are logical bytes).
    pub fn unit() -> Self {
        ScaleFactor(1.0)
    }

    /// Scale such that `real_block` bytes of materialized data stand in
    /// for `logical_block` bytes (e.g. 256 KB → 64 MB gives 256×).
    pub fn from_block_sizes(real_block: usize, logical_block: usize) -> Self {
        ScaleFactor(logical_block as f64 / real_block as f64)
    }

    /// Logical bytes represented by `real` materialized bytes.
    pub fn bytes(&self, real: u64) -> f64 {
        real as f64 * self.0
    }

    /// Logical megabytes (decimal) represented by `real` bytes.
    pub fn mb(&self, real: u64) -> f64 {
        self.bytes(real) / 1e6
    }
}

/// Elapsed time of a staged pipeline: bottleneck + leak × rest.
pub fn pipelined(stage_seconds: &[f64]) -> f64 {
    pipelined_with_leak(stage_seconds, PIPELINE_LEAK)
}

/// [`pipelined`] with an explicit leak constant (ablations).
pub fn pipelined_with_leak(stage_seconds: &[f64], leak: f64) -> f64 {
    let max = stage_seconds.iter().copied().fold(0.0, f64::max);
    let sum: f64 = stage_seconds.iter().sum();
    max + leak * (sum - max)
}

/// Accumulated physical activity of one node (or one task — ledgers
/// compose by addition).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostLedger {
    /// Bytes read sequentially from local disk.
    pub disk_read: u64,
    /// Bytes written sequentially to local disk.
    pub disk_write: u64,
    /// Bytes sent over the network (each hop counted once at the sender).
    pub net_sent: u64,
    /// Bytes of input text parsed to binary (upload-time CPU).
    pub parse_cpu: u64,
    /// Bytes of binary block data sorted + indexed (upload-time CPU).
    pub sort_cpu: u64,
    /// Bytes of record data processed at query time (string splitting,
    /// predicate evaluation, tuple reconstruction).
    pub scan_cpu: u64,
    /// Random disk seeks performed.
    pub seeks: u64,
}

impl CostLedger {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Component-wise sum, for aggregating subtask ledgers.
    pub fn add(&mut self, other: &CostLedger) {
        self.disk_read += other.disk_read;
        self.disk_write += other.disk_write;
        self.net_sent += other.net_sent;
        self.parse_cpu += other.parse_cpu;
        self.sort_cpu += other.sort_cpu;
        self.scan_cpu += other.scan_cpu;
        self.seeks += other.seeks;
    }

    /// Per-stage seconds of this ledger on the given hardware, scaled.
    /// Order: disk read, disk write, network, parse CPU, sort CPU, scan
    /// CPU. Seek time is returned separately by [`CostLedger::seek_s`].
    pub fn stage_seconds(&self, hw: &HardwareProfile, scale: ScaleFactor) -> [f64; 6] {
        [
            scale.mb(self.disk_read) / hw.disk_read_mb_s,
            scale.mb(self.disk_write) / hw.disk_write_mb_s,
            scale.mb(self.net_sent) / hw.net_mb_s,
            scale.mb(self.parse_cpu) / hw.parse_rate_total(),
            scale.mb(self.sort_cpu) / hw.sort_rate_total(),
            scale.mb(self.scan_cpu) / hw.scan_cpu_mb_s,
        ]
    }

    /// Seconds spent seeking (events, unscaled).
    pub fn seek_s(&self, hw: &HardwareProfile) -> f64 {
        self.seeks as f64 * hw.seek_s
    }

    /// Elapsed seconds assuming the stages overlap as a pipeline — the
    /// model for bulk transfers (upload, full scans).
    pub fn pipelined_seconds(&self, hw: &HardwareProfile, scale: ScaleFactor) -> f64 {
        pipelined(&self.stage_seconds(hw, scale)) + self.seek_s(hw)
    }

    /// Elapsed seconds assuming the stages run back to back — the model
    /// for small, latency-bound operations (an index lookup reads the
    /// index, then seeks, then reads partitions, then post-filters).
    pub fn serial_seconds(&self, hw: &HardwareProfile, scale: ScaleFactor) -> f64 {
        self.stage_seconds(hw, scale).iter().sum::<f64>() + self.seek_s(hw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hw() -> HardwareProfile {
        HardwareProfile::physical()
    }

    #[test]
    fn scale_factor_math() {
        let s = ScaleFactor::from_block_sizes(256 * 1024, 64 * 1024 * 1024);
        assert_eq!(s.0, 256.0);
        assert_eq!(s.bytes(1000), 256_000.0);
        assert!((ScaleFactor::unit().mb(5_000_000) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_is_max_plus_leak() {
        let t = pipelined(&[10.0, 2.0, 3.0]);
        assert!((t - (10.0 + PIPELINE_LEAK * 5.0)).abs() < 1e-9);
        assert_eq!(pipelined(&[]), 0.0);
        assert_eq!(pipelined_with_leak(&[4.0], 0.5), 4.0);
    }

    #[test]
    fn ledger_addition() {
        let mut a = CostLedger {
            disk_read: 10,
            seeks: 1,
            ..Default::default()
        };
        let b = CostLedger {
            disk_read: 5,
            net_sent: 7,
            seeks: 2,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.disk_read, 15);
        assert_eq!(a.net_sent, 7);
        assert_eq!(a.seeks, 3);
    }

    #[test]
    fn stage_seconds_use_rates() {
        let l = CostLedger {
            disk_read: 95_000_000, // 95 MB at 95 MB/s = 1 s
            ..Default::default()
        };
        let s = l.stage_seconds(&hw(), ScaleFactor::unit());
        assert!((s[0] - 1.0).abs() < 1e-9);
        assert_eq!(s[1], 0.0);
    }

    #[test]
    fn serial_exceeds_pipelined() {
        let l = CostLedger {
            disk_read: 50_000_000,
            scan_cpu: 50_000_000,
            seeks: 10,
            ..Default::default()
        };
        let p = l.pipelined_seconds(&hw(), ScaleFactor::unit());
        let s = l.serial_seconds(&hw(), ScaleFactor::unit());
        assert!(s > p);
        assert!(p > l.seek_s(&hw()));
    }

    #[test]
    fn seek_time_unscaled() {
        let l = CostLedger {
            seeks: 200,
            ..Default::default()
        };
        // 200 seeks × 5 ms = 1 s regardless of scale.
        let big = ScaleFactor(1000.0);
        assert!((l.pipelined_seconds(&hw(), big) - 1.0).abs() < 1e-9);
    }
}
