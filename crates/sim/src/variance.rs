//! Deterministic runtime-variance jitter.
//!
//! The paper observes substantial runtime variance on EC2 (\[30\], §6.3.4)
//! and chooses cc1.4xlarge nodes partly for their lower variability.
//! Experiments here apply a small multiplicative jitter to node-level
//! times so variance-sensitive comparisons (error behaviour, scale-out
//! stability) are visible — but deterministically, seeded per experiment,
//! so every run of the harness reproduces the same numbers.

/// A tiny splitmix64-based generator: enough quality for jitter, zero
/// dependencies, fully deterministic.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
    /// Relative magnitude (e.g. 0.10 → ±10 %).
    magnitude: f64,
}

impl Jitter {
    /// Creates a jitter source with the given seed and magnitude.
    pub fn new(seed: u64, magnitude: f64) -> Self {
        Jitter {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            magnitude: magnitude.clamp(0.0, 0.9),
        }
    }

    /// A jitter source that never perturbs anything.
    pub fn none() -> Self {
        Jitter::new(0, 0.0)
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[-1, 1]`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
    }

    /// Multiplies `seconds` by a factor in `[1 − m, 1 + m]`.
    pub fn apply(&mut self, seconds: f64) -> f64 {
        seconds * (1.0 + self.magnitude * self.unit())
    }

    /// Relative spread of `n` samples of a nominal time — used by the
    /// scale-out experiment to report variability.
    pub fn spread(&mut self, nominal: f64, n: usize) -> f64 {
        if n == 0 || nominal == 0.0 {
            return 0.0;
        }
        let samples: Vec<f64> = (0..n).map(|_| self.apply(nominal)).collect();
        let max = samples.iter().copied().fold(f64::MIN, f64::max);
        let min = samples.iter().copied().fold(f64::MAX, f64::min);
        (max - min) / nominal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Jitter::new(42, 0.1);
        let mut b = Jitter::new(42, 0.1);
        for _ in 0..10 {
            assert_eq!(a.apply(100.0), b.apply(100.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1, 0.1);
        let mut b = Jitter::new(2, 0.1);
        let va: Vec<f64> = (0..5).map(|_| a.apply(100.0)).collect();
        let vb: Vec<f64> = (0..5).map(|_| b.apply(100.0)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn magnitude_bounds_respected() {
        let mut j = Jitter::new(7, 0.1);
        for _ in 0..1000 {
            let t = j.apply(100.0);
            assert!((90.0..=110.0).contains(&t), "t = {t}");
        }
    }

    #[test]
    fn zero_magnitude_is_identity() {
        let mut j = Jitter::none();
        assert_eq!(j.apply(123.0), 123.0);
    }

    #[test]
    fn spread_grows_with_magnitude() {
        let mut low = Jitter::new(3, 0.02);
        let mut high = Jitter::new(3, 0.2);
        assert!(high.spread(100.0, 50) > low.spread(100.0, 50));
        assert_eq!(Jitter::none().spread(100.0, 0), 0.0);
    }
}
