//! # hail-sim
//!
//! The cluster hardware simulator: named hardware profiles for the
//! paper's six clusters, a cost ledger that components fill with physical
//! activity (bytes moved, seeks, CPU work), and the models that convert
//! ledgers into simulated seconds.
//!
//! Design rule: *components never measure wall-clock time.* The
//! functional code path (real parsing, sorting, indexing, querying on
//! materialized data) reports what it did; this crate prices it.

#![forbid(unsafe_code)]

pub mod clock;
pub mod cluster;
pub mod cost;
pub mod profile;
pub mod variance;

pub use clock::SlotPool;
pub use cluster::ClusterSpec;
pub use cost::{pipelined, pipelined_with_leak, CostLedger, ScaleFactor, PIPELINE_LEAK};
pub use profile::HardwareProfile;
pub use variance::Jitter;
