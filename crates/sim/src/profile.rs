//! Hardware profiles for the paper's six clusters (§6.1, §6.3.3).
//!
//! A profile captures the per-node rates the cost model needs: sequential
//! disk bandwidth, seek time, network bandwidth, and per-core CPU
//! throughput for the three kinds of work the upload/query pipelines do
//! (text→binary parsing, in-memory sort + index build, and scan-time
//! record processing).
//!
//! The constants are calibrated once so that *standard Hadoop* reproduces
//! the paper's baseline numbers on the physical cluster; every other
//! result (HAIL, Hadoop++, scale-up, scale-out) then follows from system
//! structure, not per-figure tuning. §6.3.3's observation — Hadoop is
//! I/O-bound, so better CPUs help HAIL but not Hadoop — is encoded by
//! the EC2 profiles varying CPU much more than disk.

/// Per-node hardware rates. All bandwidths in MB/s (decimal), times in
/// seconds.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Human-readable name used in experiment reports.
    pub name: String,
    /// Sequential disk read bandwidth, MB/s (effective, per node).
    pub disk_read_mb_s: f64,
    /// Sequential disk write bandwidth, MB/s (effective, per node).
    pub disk_write_mb_s: f64,
    /// Average disk seek time, seconds (the paper's 5 ms).
    pub seek_s: f64,
    /// Effective per-node network bandwidth, MB/s.
    pub net_mb_s: f64,
    /// CPU cores per node.
    pub cores: usize,
    /// Text→binary parse throughput per core, MB/s of input text.
    pub parse_mb_s: f64,
    /// In-memory sort + index build throughput per core, MB/s of binary
    /// block data.
    pub sort_mb_s: f64,
    /// Query-time record-processing throughput per core, MB/s — string
    /// splitting for text records, tuple reconstruction for PAX.
    pub scan_cpu_mb_s: f64,
    /// Map slots per TaskTracker (Hadoop default: 2).
    pub map_slots: usize,
    /// Per-map-task scheduling overhead, seconds ("to schedule a single
    /// task, Hadoop spends several seconds", §6.4.1).
    pub task_overhead_s: f64,
    /// Fixed job startup: JobClient resource staging + split submission.
    pub job_startup_s: f64,
    /// Relative runtime variance (EC2 noise, \[30\]); 0 disables jitter.
    pub variance: f64,
}

impl HardwareProfile {
    /// The 10-node physical cluster: 2.66 GHz quad-core Xeon, 16 GB RAM,
    /// 6×750 GB SATA disks, GbE. Low variance.
    pub fn physical() -> Self {
        HardwareProfile {
            name: "physical".into(),
            disk_read_mb_s: 95.0,
            disk_write_mb_s: 46.0,
            seek_s: 0.005,
            net_mb_s: 110.0,
            cores: 4,
            parse_mb_s: 55.0,
            sort_mb_s: 90.0,
            scan_cpu_mb_s: 21.0,
            map_slots: 2,
            task_overhead_s: 3.2,
            job_startup_s: 5.0,
            variance: 0.01,
        }
    }

    /// EC2 m1.large: 2 virtual cores, modest I/O, high variance.
    pub fn ec2_large() -> Self {
        HardwareProfile {
            name: "ec2-m1.large".into(),
            disk_read_mb_s: 70.0,
            disk_write_mb_s: 35.0,
            seek_s: 0.006,
            net_mb_s: 60.0,
            cores: 2,
            parse_mb_s: 30.0,
            sort_mb_s: 50.0,
            scan_cpu_mb_s: 14.0,
            map_slots: 2,
            task_overhead_s: 3.6,
            job_startup_s: 6.0,
            variance: 0.12,
        }
    }

    /// EC2 m1.xlarge: 4 virtual cores, better I/O.
    pub fn ec2_xlarge() -> Self {
        HardwareProfile {
            name: "ec2-m1.xlarge".into(),
            disk_read_mb_s: 95.0,
            disk_write_mb_s: 50.0,
            seek_s: 0.006,
            net_mb_s: 90.0,
            cores: 4,
            parse_mb_s: 42.0,
            sort_mb_s: 70.0,
            scan_cpu_mb_s: 18.0,
            map_slots: 2,
            task_overhead_s: 3.4,
            job_startup_s: 5.5,
            variance: 0.10,
        }
    }

    /// EC2 cc1.4xlarge (cluster quadruple): strong CPUs, 10 GbE, the
    /// lowest variability of the EC2 types — but disks barely better than
    /// m1.xlarge, which is why Hadoop gains little from it (§6.3.3).
    pub fn ec2_cc1_4xlarge() -> Self {
        HardwareProfile {
            name: "ec2-cc1.4xlarge".into(),
            disk_read_mb_s: 100.0,
            disk_write_mb_s: 50.0,
            seek_s: 0.005,
            net_mb_s: 300.0,
            cores: 8,
            parse_mb_s: 65.0,
            sort_mb_s: 110.0,
            scan_cpu_mb_s: 24.0,
            map_slots: 2,
            task_overhead_s: 3.2,
            job_startup_s: 5.0,
            variance: 0.04,
        }
    }

    /// Aggregate parse throughput with all cores busy, MB/s.
    pub fn parse_rate_total(&self) -> f64 {
        self.parse_mb_s * self.cores as f64
    }

    /// Aggregate sort throughput with all cores busy, MB/s.
    pub fn sort_rate_total(&self) -> f64 {
        self.sort_mb_s * self.cores as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_sane() {
        for p in [
            HardwareProfile::physical(),
            HardwareProfile::ec2_large(),
            HardwareProfile::ec2_xlarge(),
            HardwareProfile::ec2_cc1_4xlarge(),
        ] {
            assert!(p.disk_read_mb_s > 0.0);
            assert!(p.disk_write_mb_s > 0.0);
            assert!(p.net_mb_s > 0.0);
            assert!(p.cores >= 1);
            assert!(p.map_slots >= 1);
            assert!(p.seek_s > 0.0 && p.seek_s < 0.1);
            assert!((0.0..1.0).contains(&p.variance));
        }
    }

    #[test]
    fn scale_up_improves_cpu_more_than_disk() {
        // §6.3.3: Hadoop is I/O bound, so CC1 over large should improve
        // CPU rates far more than disk rates.
        let large = HardwareProfile::ec2_large();
        let cc1 = HardwareProfile::ec2_cc1_4xlarge();
        let cpu_gain = cc1.parse_rate_total() / large.parse_rate_total();
        let disk_gain = cc1.disk_write_mb_s / large.disk_write_mb_s;
        assert!(cpu_gain > 2.0 * disk_gain);
    }

    #[test]
    fn totals() {
        let p = HardwareProfile::physical();
        assert_eq!(p.parse_rate_total(), p.parse_mb_s * 4.0);
        assert_eq!(p.sort_rate_total(), p.sort_mb_s * 4.0);
    }

    #[test]
    fn clone_equality() {
        let p = HardwareProfile::ec2_xlarge();
        assert_eq!(p.clone(), p);
    }
}
