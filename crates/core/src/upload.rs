//! Upload clients: standard HDFS, HAIL, and the naive two-pass ablation.
//!
//! Each node uploads its local portion of the dataset (the paper
//! generates 20 GB/13 GB *per node*). The cluster-wide upload time is the
//! slowest node's pipelined time, computed from the per-node cost
//! ledgers the upload fills.

use crate::dataset::{Dataset, DatasetFormat};
use bytes::Bytes;
use hail_dfs::{hail_upload_block, hdfs_upload_block, DfsCluster, FaultPlan};
use hail_index::ReplicaIndexConfig;
use hail_pax::PaxBlockBuilder;
use hail_sim::ClusterSpec;
use hail_types::{BlockId, DatanodeId, HailError, Result, Schema};

/// Computes the cluster-wide upload time from the per-node ledgers: each
/// node's client + datanode work forms one pipeline; the cluster finishes
/// when the slowest node does.
pub fn upload_seconds(cluster: &DfsCluster, spec: &ClusterSpec) -> f64 {
    cluster
        .upload_ledgers()
        .iter()
        .map(|l| l.pipelined_seconds(&spec.profile, spec.scale))
        .fold(0.0, f64::max)
}

/// Uploads text through the standard HDFS client: blocks are cut after a
/// constant number of bytes (rounded to the previous line end so the
/// baseline parses cleanly at query time; real HDFS splits mid-row and
/// patches it up in the record reader), stored as-is on every replica.
pub fn upload_hadoop(
    cluster: &mut DfsCluster,
    schema: &Schema,
    name: &str,
    node_texts: &[(DatanodeId, String)],
) -> Result<Dataset> {
    let block_size = cluster.config().block_size;
    let mut blocks: Vec<BlockId> = Vec::new();
    for (node, text) in node_texts {
        let mut start = 0usize;
        let bytes = text.as_bytes();
        while start < bytes.len() {
            // Cut at the last newline within block_size.
            let hard_end = (start + block_size).min(bytes.len());
            let end = if hard_end == bytes.len() {
                hard_end
            } else {
                match bytes[start..hard_end].iter().rposition(|&b| b == b'\n') {
                    Some(nl) => start + nl + 1,
                    // A row longer than the remaining window (e.g. a
                    // final partial line spilling over the boundary):
                    // extend the block to the row's end rather than
                    // splitting it, which would turn one logical row
                    // into two garbage fragments on different blocks.
                    // Real HDFS splits mid-row and patches it up in the
                    // record reader; an oversized block models the same
                    // "the row stays whole" semantics.
                    None => bytes[hard_end..]
                        .iter()
                        .position(|&b| b == b'\n')
                        .map(|nl| hard_end + nl + 1)
                        .unwrap_or(bytes.len()),
                }
            };
            let chunk = Bytes::copy_from_slice(&bytes[start..end]);
            blocks.push(hdfs_upload_block(
                cluster,
                *node,
                chunk,
                &FaultPlan::none(),
            )?);
            start = end;
        }
    }
    Ok(Dataset::new(
        name,
        schema.clone(),
        blocks,
        DatasetFormat::HadoopText,
    ))
}

/// Uploads text through the HAIL client (Fig. 1): content-aware block
/// cutting, parse to binary PAX (charged to the node's client ledger),
/// then the HAIL pipeline sorts and indexes each replica.
pub fn upload_hail(
    cluster: &mut DfsCluster,
    schema: &Schema,
    name: &str,
    node_texts: &[(DatanodeId, String)],
    index_config: &ReplicaIndexConfig,
) -> Result<Dataset> {
    index_config.validate(schema)?;
    if index_config.replication() != cluster.config().replication {
        return Err(HailError::Job(format!(
            "index config has {} replicas, cluster replication is {}",
            index_config.replication(),
            cluster.config().replication
        )));
    }
    let mut blocks = Vec::new();
    for (node, text) in node_texts {
        // The client reads the file from local disk and parses every byte
        // to binary (steps 1–2).
        {
            let ledger = cluster.client_ledger_mut(*node);
            ledger.disk_read += text.len() as u64;
            ledger.seeks += 1;
            ledger.parse_cpu += text.len() as u64;
        }
        let mut builder = PaxBlockBuilder::new(schema.clone(), cluster.config().clone());
        for line in text.lines() {
            builder.push_line(line)?;
            if builder.is_full() {
                let pax = builder.finish()?;
                blocks.push(hail_upload_block(
                    cluster,
                    *node,
                    &pax,
                    index_config,
                    &FaultPlan::none(),
                )?);
            }
        }
        if !builder.is_empty() {
            let pax = builder.finish()?;
            blocks.push(hail_upload_block(
                cluster,
                *node,
                &pax,
                index_config,
                &FaultPlan::none(),
            )?);
        }
    }
    Ok(Dataset::new(
        name,
        schema.clone(),
        blocks,
        DatasetFormat::HailPax,
    ))
}

/// The naive two-pass upload the paper's first prototype used (§3.1):
/// store the original text like HDFS, then re-read every replica's
/// block, convert to PAX, and re-write it — paying one extra read and one
/// extra write per replica ("for an input file of 100 GB we would have
/// to pay 600 GB extra I/O"). Kept as an ablation.
pub fn upload_hail_naive(
    cluster: &mut DfsCluster,
    schema: &Schema,
    name: &str,
    node_texts: &[(DatanodeId, String)],
    index_config: &ReplicaIndexConfig,
) -> Result<Dataset> {
    // Pass 1: plain HDFS upload of the text.
    let staged = upload_hadoop(cluster, schema, name, node_texts)?;

    // Pass 2: per block, each datanode re-reads the text replica,
    // parses, sorts, indexes and re-writes. We model it by charging the
    // extra I/O and then performing the real HAIL conversion.
    let mut blocks = Vec::new();
    for (i, &text_block) in staged.blocks.iter().enumerate() {
        let hosts = cluster.namenode().get_hosts(text_block)?;
        // Extra read + parse on every replica holder.
        for &dn in &hosts {
            let mut extra = hail_sim::CostLedger::new();
            let data = cluster.datanode(dn)?.read_replica(text_block, &mut extra)?;
            // Charge the re-read and the parse to the datanode.
            extra.parse_cpu += data.len() as u64;
            cluster.datanode_mut(dn)?.add_extra(&extra);
        }
        // Rebuild the block as PAX and upload it through the HAIL
        // pipeline from the first replica holder (extra write included in
        // the pipeline's normal accounting).
        let writer = hosts.first().copied().unwrap_or(i % cluster.node_count());
        let mut peek = hail_sim::CostLedger::new();
        let text = cluster
            .datanode(writer)?
            .read_replica(text_block, &mut peek)?;
        let text = String::from_utf8(text.to_vec())
            .map_err(|_| HailError::Corrupt("text block is not UTF-8".into()))?;
        let mut builder = PaxBlockBuilder::new(schema.clone(), cluster.config().clone());
        for line in text.lines() {
            builder.push_line(line)?;
        }
        let pax = builder.finish()?;
        blocks.push(hail_upload_block(
            cluster,
            writer,
            &pax,
            index_config,
            &FaultPlan::none(),
        )?);
    }
    Ok(Dataset::new(
        name,
        schema.clone(),
        blocks,
        DatasetFormat::HailPax,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_sim::HardwareProfile;
    use hail_types::{DataType, Field, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::VarChar),
        ])
        .unwrap()
    }

    fn texts(nodes: usize, rows_per_node: usize) -> Vec<(DatanodeId, String)> {
        (0..nodes)
            .map(|n| {
                let text: String = (0..rows_per_node)
                    .map(|i| format!("{}|value-{n}-{i}\n", (i * 13 + n) % 97))
                    .collect();
                (n, text)
            })
            .collect()
    }

    #[test]
    fn hadoop_upload_splits_by_bytes() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(256));
        let ds = upload_hadoop(&mut c, &schema(), "t", &texts(2, 100)).unwrap();
        assert!(ds.block_count() > 2);
        assert_eq!(ds.format, DatasetFormat::HadoopText);
        // All blocks have 3 replicas of identical bytes.
        for &b in &ds.blocks {
            assert_eq!(c.namenode().get_hosts(b).unwrap().len(), 3);
        }
    }

    #[test]
    fn hail_upload_parses_and_indexes() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(512));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[0, 1]);
        let ds = upload_hail(&mut c, &schema(), "t", &texts(2, 100), &cfg).unwrap();
        assert!(ds.block_count() >= 2);
        assert_eq!(ds.format, DatasetFormat::HailPax);
        // Every block has an index on column 0 somewhere.
        for &b in &ds.blocks {
            assert_eq!(c.namenode().get_hosts_with_index(b, 0).unwrap().len(), 1);
            assert_eq!(c.namenode().get_hosts_with_index(b, 1).unwrap().len(), 1);
        }
        // The client parsed all text bytes.
        let parse_total: u64 = (0..4).map(|n| c.client_ledger(n).parse_cpu).sum();
        let text_total: u64 = texts(2, 100).iter().map(|(_, t)| t.len() as u64).sum();
        assert_eq!(parse_total, text_total);
    }

    #[test]
    fn upload_time_hail_vs_hadoop_binary_shrink() {
        // Integer-heavy data shrinks a lot in binary; HAIL upload should
        // beat Hadoop despite sorting (the paper's Synthetic result).
        let int_schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
            Field::new("c", DataType::Int),
        ])
        .unwrap();
        let node_texts: Vec<(DatanodeId, String)> = (0..4)
            .map(|n| {
                let text: String = (0..2000)
                    .map(|i| format!("{}|{}|{}\n", 100_000 + i, 200_000 + i * 7, 300_000 + i * 13))
                    .collect();
                (n, text)
            })
            .collect();
        let spec = ClusterSpec::new(4, HardwareProfile::physical());

        let mut hadoop = DfsCluster::new(4, StorageConfig::test_scale(16 * 1024));
        upload_hadoop(&mut hadoop, &int_schema, "syn", &node_texts).unwrap();
        let t_hadoop = upload_seconds(&hadoop, &spec);

        let mut hail = DfsCluster::new(4, StorageConfig::test_scale(16 * 1024));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[0, 1, 2]);
        upload_hail(&mut hail, &int_schema, "syn", &node_texts, &cfg).unwrap();
        let t_hail = upload_seconds(&hail, &spec);

        assert!(
            t_hail < t_hadoop,
            "HAIL ({t_hail:.3}s) should beat Hadoop ({t_hadoop:.3}s) on integer data"
        );
    }

    #[test]
    fn naive_upload_is_slower() {
        let mut fast = DfsCluster::new(4, StorageConfig::test_scale(2048));
        let mut naive = DfsCluster::new(4, StorageConfig::test_scale(2048));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[0]);
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        upload_hail(&mut fast, &schema(), "t", &texts(2, 200), &cfg).unwrap();
        upload_hail_naive(&mut naive, &schema(), "t", &texts(2, 200), &cfg).unwrap();
        let t_fast = upload_seconds(&fast, &spec);
        let t_naive = upload_seconds(&naive, &spec);
        assert!(
            t_naive > 1.5 * t_fast,
            "naive two-pass ({t_naive:.4}s) must pay extra I/O vs streaming ({t_fast:.4}s)"
        );
    }

    /// Regression: a trailing unterminated row longer than the block
    /// remainder must stay whole — no dropped or duplicated bytes, and
    /// no row split across two blocks.
    #[test]
    fn final_partial_line_is_never_split() {
        let block_size = 32;
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(block_size));
        // Two short rows, then one long row with NO trailing newline
        // that crosses the block boundary.
        let long_tail = format!("7|{}", "x".repeat(3 * block_size)); // unterminated
        let text = format!("1|aa\n2|bb\n{long_tail}");
        let ds = upload_hadoop(&mut c, &schema(), "t", &[(0, text.clone())]).unwrap();

        // Re-read every block in order and concatenate: byte-identical
        // to the input (nothing dropped, nothing duplicated).
        let mut ledger = hail_sim::CostLedger::new();
        let mut reassembled = Vec::new();
        let mut per_block_rows = Vec::new();
        for &b in &ds.blocks {
            let host = c.namenode().get_hosts(b).unwrap()[0];
            let data = c
                .datanode(host)
                .unwrap()
                .read_replica(b, &mut ledger)
                .unwrap();
            per_block_rows.push(
                std::str::from_utf8(&data)
                    .unwrap()
                    .lines()
                    .map(String::from)
                    .collect::<Vec<_>>(),
            );
            reassembled.extend_from_slice(&data);
        }
        assert_eq!(reassembled, text.as_bytes(), "byte-exact reassembly");

        // Every line of the original text appears exactly once, whole,
        // in exactly one block — the long tail included.
        let all_rows: Vec<String> = per_block_rows.into_iter().flatten().collect();
        let expected: Vec<String> = text.lines().map(String::from).collect();
        assert_eq!(all_rows, expected, "no row may be split across blocks");
        assert!(all_rows.contains(&long_tail));
    }

    /// A mid-file row longer than the block size also stays whole (the
    /// block overflows rather than cutting the row).
    #[test]
    fn oversized_interior_row_stays_whole() {
        let block_size = 16;
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(block_size));
        let big = format!("9|{}", "y".repeat(5 * block_size));
        let text = format!("1|aa\n{big}\n2|bb\n");
        let ds = upload_hadoop(&mut c, &schema(), "t", &[(0, text.clone())]).unwrap();
        let mut ledger = hail_sim::CostLedger::new();
        let mut reassembled = Vec::new();
        for &b in &ds.blocks {
            let host = c.namenode().get_hosts(b).unwrap()[0];
            let data = c
                .datanode(host)
                .unwrap()
                .read_replica(b, &mut ledger)
                .unwrap();
            let block_text = std::str::from_utf8(&data).unwrap();
            // No block holds a fragment of the big row.
            for line in block_text.lines() {
                assert!(
                    text.lines().any(|l| l == line),
                    "block holds a split fragment: {line:?}"
                );
            }
            reassembled.extend_from_slice(&data);
        }
        assert_eq!(reassembled, text.as_bytes());
    }

    #[test]
    fn replication_mismatch_rejected() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(512));
        let cfg = ReplicaIndexConfig::unindexed(5);
        assert!(upload_hail(&mut c, &schema(), "t", &texts(1, 10), &cfg).is_err());
    }
}
