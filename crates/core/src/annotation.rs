//! The `@HailQuery` annotation language (§4.1).
//!
//! Bob annotates his map function with a selection predicate and a
//! projection list:
//!
//! ```text
//! @HailQuery(filter="@3 between(1999-01-01, 2000-01-01)", projection={@1})
//! ```
//!
//! `@k` addresses the k-th attribute (1-based). Supported predicates:
//! `=`, `!=`, `<`, `<=`, `>`, `>=`, and `between(lo, hi)` (inclusive),
//! combined with `and`. Literals are parsed against the schema's
//! attribute type, so `1999-01-01` becomes a date when `@3` is a DATE.

use hail_index::KeyBounds;
use hail_types::{HailError, Result, Row, Schema, Value};
use std::fmt;
use std::ops::Bound;

/// A comparison operator in a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.total_cmp(rhs);
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// One predicate over a single attribute, with typed operands.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `@col op literal`.
    Cmp {
        column: usize,
        op: CmpOp,
        value: Value,
    },
    /// `@col between(lo, hi)`, inclusive on both ends.
    Between { column: usize, lo: Value, hi: Value },
}

impl Predicate {
    /// The 0-based column this predicate filters.
    pub fn column(&self) -> usize {
        match self {
            Predicate::Cmp { column, .. } | Predicate::Between { column, .. } => *column,
        }
    }

    /// Evaluates the predicate against a full row.
    pub fn matches(&self, row: &Row) -> bool {
        match self {
            Predicate::Cmp { column, op, value } => {
                row.get(*column).map(|v| op.eval(v, value)).unwrap_or(false)
            }
            Predicate::Between { column, lo, hi } => row
                .get(*column)
                .map(|v| v >= lo && v <= hi)
                .unwrap_or(false),
        }
    }

    /// Evaluates the predicate against a single attribute value.
    pub fn matches_value(&self, v: &Value) -> bool {
        match self {
            Predicate::Cmp { op, value, .. } => op.eval(v, value),
            Predicate::Between { lo, hi, .. } => v >= lo && v <= hi,
        }
    }

    /// The key bounds this predicate induces on its column, used to drive
    /// a clustered-index lookup. `!=` gives an unbounded range (the index
    /// cannot help).
    pub fn key_bounds(&self) -> KeyBounds {
        match self {
            Predicate::Between { lo, hi, .. } => KeyBounds::between(lo.clone(), hi.clone()),
            Predicate::Cmp { op, value, .. } => match op {
                CmpOp::Eq => KeyBounds::point(value.clone()),
                CmpOp::Le => KeyBounds::at_most(value.clone()),
                CmpOp::Lt => KeyBounds {
                    lo: Bound::Unbounded,
                    hi: Bound::Excluded(value.clone()),
                },
                CmpOp::Ge => KeyBounds::at_least(value.clone()),
                CmpOp::Gt => KeyBounds {
                    lo: Bound::Excluded(value.clone()),
                    hi: Bound::Unbounded,
                },
                CmpOp::Ne => KeyBounds {
                    lo: Bound::Unbounded,
                    hi: Bound::Unbounded,
                },
            },
        }
    }

    /// True if this predicate can be accelerated by a clustered index on
    /// its column.
    pub fn index_friendly(&self) -> bool {
        !matches!(self, Predicate::Cmp { op: CmpOp::Ne, .. })
    }
}

/// A parsed `@HailQuery` annotation: a conjunction of predicates plus a
/// projection list (0-based columns; empty = all attributes).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HailQuery {
    pub predicates: Vec<Predicate>,
    pub projection: Vec<usize>,
}

impl HailQuery {
    /// Parses the `filter` and `projection` annotation strings against a
    /// schema. Either may be empty.
    pub fn parse(filter: &str, projection: &str, schema: &Schema) -> Result<HailQuery> {
        let predicates = if filter.trim().is_empty() {
            Vec::new()
        } else {
            parse_filter(filter, schema)?
        };
        let projection = if projection.trim().is_empty() {
            Vec::new()
        } else {
            parse_projection(projection, schema)?
        };
        Ok(HailQuery {
            predicates,
            projection,
        })
    }

    /// A full-scan query (no filter, all attributes).
    pub fn full_scan() -> HailQuery {
        HailQuery::default()
    }

    /// True if every predicate matches the row.
    pub fn matches(&self, row: &Row) -> bool {
        self.predicates.iter().all(|p| p.matches(row))
    }

    /// The projected 0-based columns; `None` means all attributes.
    pub fn projected_columns(&self, schema: &Schema) -> Vec<usize> {
        if self.projection.is_empty() {
            (0..schema.len()).collect()
        } else {
            self.projection.clone()
        }
    }

    /// Columns the reader must materialize: projected ∪ filtered.
    pub fn needed_columns(&self, schema: &Schema) -> Vec<usize> {
        let mut cols = self.projected_columns(schema);
        for p in &self.predicates {
            if !cols.contains(&p.column()) {
                cols.push(p.column());
            }
        }
        cols
    }

    /// The best index-friendly predicate for a replica indexed on
    /// `column`, if any.
    pub fn predicate_on(&self, column: usize) -> Option<&Predicate> {
        self.predicates
            .iter()
            .find(|p| p.column() == column && p.index_friendly())
    }

    /// The intersected key bounds of *all* index-friendly predicates on
    /// `column` — `@4 >= 1 and @4 <= 10` yields the tight `[1, 10]`
    /// range, not just the first conjunct's half-open one.
    pub fn bounds_on(&self, column: usize) -> Option<KeyBounds> {
        let mut bounds: Option<KeyBounds> = None;
        for p in &self.predicates {
            if p.column() == column && p.index_friendly() {
                let b = p.key_bounds();
                bounds = Some(match bounds {
                    None => b,
                    Some(acc) => acc.intersect(&b),
                });
            }
        }
        bounds
    }

    /// Columns of all index-friendly predicates, in annotation order —
    /// the candidates for index selection at query time.
    pub fn filter_columns(&self) -> Vec<usize> {
        self.predicates
            .iter()
            .filter(|p| p.index_friendly())
            .map(|p| p.column())
            .collect()
    }
}

/// Parses `@k` into a 0-based column index.
fn parse_attr(token: &str, schema: &Schema) -> Result<usize> {
    let t = token.trim();
    let rest = t
        .strip_prefix('@')
        .ok_or_else(|| HailError::Annotation(format!("expected @<pos>, got {t:?}")))?;
    let pos: usize = rest
        .parse()
        .map_err(|_| HailError::Annotation(format!("invalid attribute position {rest:?}")))?;
    schema.position_to_index(pos)
}

/// Parses a literal token against the attribute's declared type.
/// Single-quoted strings have their quotes stripped first.
fn parse_literal(token: &str, column: usize, schema: &Schema) -> Result<Value> {
    let t = token.trim();
    let unquoted = t
        .strip_prefix('\'')
        .and_then(|s| s.strip_suffix('\''))
        .unwrap_or(t);
    let dtype = schema.field(column)?.data_type;
    Value::parse(unquoted, dtype).map_err(|e| HailError::Annotation(format!("literal {t:?}: {e}")))
}

/// Splits a filter string on `and` (case-insensitive, word-boundary).
fn split_conjuncts(filter: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = filter;
    loop {
        // Find a case-insensitive " and " outside quotes.
        let lower = rest.to_ascii_lowercase();
        let mut cut = None;
        let mut in_quote = false;
        let bytes = lower.as_bytes();
        for i in 0..bytes.len() {
            match bytes[i] {
                b'\'' => in_quote = !in_quote,
                b'a' if !in_quote
                    && lower[i..].starts_with("and")
                    && i > 0
                    && bytes[i - 1].is_ascii_whitespace()
                    && lower[i + 3..].starts_with(char::is_whitespace) =>
                {
                    cut = Some(i);
                    break;
                }
                _ => {}
            }
        }
        match cut {
            Some(i) => {
                out.push(rest[..i].trim().to_string());
                rest = &rest[i + 3..];
            }
            None => {
                out.push(rest.trim().to_string());
                return out;
            }
        }
    }
}

/// Parses one conjunct: `@k op literal` or `@k between(lo, hi)`.
fn parse_conjunct(conjunct: &str, schema: &Schema) -> Result<Predicate> {
    let c = conjunct.trim();
    // between(…)?
    if let Some(idx) = c.to_ascii_lowercase().find("between") {
        let column = parse_attr(&c[..idx], schema)?;
        let args = c[idx + "between".len()..].trim();
        let inner = args
            .strip_prefix('(')
            .and_then(|s| s.strip_suffix(')'))
            .ok_or_else(|| HailError::Annotation(format!("between needs (lo, hi) in {c:?}")))?;
        let parts: Vec<&str> = inner.splitn(2, ',').collect();
        if parts.len() != 2 {
            return Err(HailError::Annotation(format!(
                "between needs two arguments in {c:?}"
            )));
        }
        let lo = parse_literal(parts[0], column, schema)?;
        let hi = parse_literal(parts[1], column, schema)?;
        if lo > hi {
            return Err(HailError::Annotation(format!(
                "between bounds reversed in {c:?}"
            )));
        }
        return Ok(Predicate::Between { column, lo, hi });
    }
    // Comparison: find the operator (longest match first).
    for (text, op) in [
        ("!=", CmpOp::Ne),
        ("<=", CmpOp::Le),
        (">=", CmpOp::Ge),
        ("<", CmpOp::Lt),
        (">", CmpOp::Gt),
        ("=", CmpOp::Eq),
    ] {
        if let Some(idx) = c.find(text) {
            let column = parse_attr(&c[..idx], schema)?;
            let value = parse_literal(&c[idx + text.len()..], column, schema)?;
            return Ok(Predicate::Cmp { column, op, value });
        }
    }
    Err(HailError::Annotation(format!(
        "unparseable predicate {c:?}"
    )))
}

fn parse_filter(filter: &str, schema: &Schema) -> Result<Vec<Predicate>> {
    split_conjuncts(filter)
        .iter()
        .map(|c| parse_conjunct(c, schema))
        .collect()
}

/// Parses `{@1, @3}` or `@1, @3` into 0-based columns.
fn parse_projection(projection: &str, schema: &Schema) -> Result<Vec<usize>> {
    let inner = projection
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .unwrap_or(projection.trim());
    inner
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_attr(s, schema))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{parse_line_strict, DataType, Field};

    /// The UserVisits-like schema of the paper's examples: @1 sourceIP,
    /// @3 visitDate, @4 adRevenue.
    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("sourceIP", DataType::VarChar),
            Field::new("destURL", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("adRevenue", DataType::Float),
            Field::new("duration", DataType::Int),
        ])
        .unwrap()
    }

    fn row(line: &str) -> Row {
        parse_line_strict(line, &schema(), '|').unwrap()
    }

    #[test]
    fn bobs_q1_annotation() {
        // The paper's example annotation, verbatim (modulo spacing).
        let q = HailQuery::parse("@3 between(1999-01-01, 2000-01-01)", "{@1}", &schema()).unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert_eq!(q.projection, vec![0]);
        assert!(q.matches(&row("1.1.1.1|u|1999-06-15|2.0|7")));
        assert!(q.matches(&row("1.1.1.1|u|1999-01-01|2.0|7")));
        assert!(q.matches(&row("1.1.1.1|u|2000-01-01|2.0|7")));
        assert!(!q.matches(&row("1.1.1.1|u|2000-01-02|2.0|7")));
    }

    #[test]
    fn equality_on_varchar() {
        let q = HailQuery::parse("@1 = '172.101.11.46'", "", &schema()).unwrap();
        assert!(q.matches(&row("172.101.11.46|u|1999-06-15|2.0|7")));
        assert!(!q.matches(&row("172.101.11.47|u|1999-06-15|2.0|7")));
        // Empty projection = all attributes.
        assert_eq!(q.projected_columns(&schema()), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn conjunction_bobs_q3() {
        let q = HailQuery::parse(
            "@1 = '172.101.11.46' and @3 = 1992-12-22",
            "{@2, @5}",
            &schema(),
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 2);
        assert!(q.matches(&row("172.101.11.46|u|1992-12-22|2.0|7")));
        assert!(!q.matches(&row("172.101.11.46|u|1992-12-23|2.0|7")));
        assert_eq!(q.projection, vec![1, 4]);
        // Needed columns = projection ∪ filters.
        let mut needed = q.needed_columns(&schema());
        needed.sort_unstable();
        assert_eq!(needed, vec![0, 1, 2, 4]);
    }

    #[test]
    fn range_on_float() {
        let q = HailQuery::parse("@4 >= 1 and @4 <= 10", "", &schema()).unwrap();
        assert!(q.matches(&row("a|u|1999-01-01|5.5|7")));
        assert!(q.matches(&row("a|u|1999-01-01|1|7")));
        assert!(!q.matches(&row("a|u|1999-01-01|0.5|7")));
        assert!(!q.matches(&row("a|u|1999-01-01|10.01|7")));
    }

    #[test]
    fn key_bounds_extraction() {
        let q = HailQuery::parse("@5 between(10, 20)", "", &schema()).unwrap();
        let b = q.predicate_on(4).unwrap().key_bounds();
        assert!(b.contains(&Value::Int(10)));
        assert!(b.contains(&Value::Int(20)));
        assert!(!b.contains(&Value::Int(21)));
        // != is not index friendly.
        let q2 = HailQuery::parse("@5 != 3", "", &schema()).unwrap();
        assert!(q2.predicate_on(4).is_none());
        assert!(q2.filter_columns().is_empty());
    }

    #[test]
    fn operators() {
        for (f, good, bad) in [
            ("@5 < 10", "a|u|1999-01-01|1.0|9", "a|u|1999-01-01|1.0|10"),
            ("@5 <= 10", "a|u|1999-01-01|1.0|10", "a|u|1999-01-01|1.0|11"),
            ("@5 > 10", "a|u|1999-01-01|1.0|11", "a|u|1999-01-01|1.0|10"),
            ("@5 >= 10", "a|u|1999-01-01|1.0|10", "a|u|1999-01-01|1.0|9"),
            ("@5 != 10", "a|u|1999-01-01|1.0|9", "a|u|1999-01-01|1.0|10"),
        ] {
            let q = HailQuery::parse(f, "", &schema()).unwrap();
            assert!(q.matches(&row(good)), "{f} should match {good}");
            assert!(!q.matches(&row(bad)), "{f} should reject {bad}");
        }
    }

    #[test]
    fn quoted_string_with_and_inside() {
        let q = HailQuery::parse("@1 = 'rock and roll'", "", &schema()).unwrap();
        assert_eq!(q.predicates.len(), 1);
        assert!(q.matches(&row("rock and roll|u|1999-01-01|1.0|1")));
    }

    #[test]
    fn parse_errors() {
        let s = schema();
        assert!(HailQuery::parse("@9 = 1", "", &s).is_err());
        assert!(HailQuery::parse("@0 = 1", "", &s).is_err());
        assert!(HailQuery::parse("@5 between(3)", "", &s).is_err());
        assert!(HailQuery::parse("@5 between(5, 3)", "", &s).is_err());
        assert!(HailQuery::parse("@5 ~ 3", "", &s).is_err());
        assert!(HailQuery::parse("@3 = not-a-date", "", &s).is_err());
        assert!(HailQuery::parse("", "{@7}", &s).is_err());
    }

    #[test]
    fn full_scan_query() {
        let q = HailQuery::full_scan();
        assert!(q.matches(&row("a|u|1999-01-01|1.0|1")));
        assert!(q.predicates.is_empty());
    }
}
