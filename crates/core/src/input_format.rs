//! The three `InputFormat` implementations the experiments compare:
//! `HailInputFormat`, the standard Hadoop text format, and Hadoop++'s
//! trojan-indexed format.

use crate::annotation::HailQuery;
use crate::baselines::hadoop_plus_plus::{read_hpp_block, trojan_header_bytes};
use crate::dataset::Dataset;
use crate::record_reader::{read_hail_block, read_hadoop_text_block};
use crate::splitting::{default_splits, hail_splits};
#[allow(unused_imports)]
use crate::splitting::index_aware_default_splits;
use hail_dfs::DfsCluster;
use hail_mr::{InputFormat, InputSplit, MapRecord, SplitPlan, TaskStats};
use hail_types::{BlockId, DatanodeId, Result};

/// HAIL's input format: `HailSplitting` + `HailRecordReader`.
///
/// Set `splitting` to false to reproduce the paper's §6.4 configuration
/// (per-replica indexes but default Hadoop splitting) and true for §6.5.
pub struct HailInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub splitting: bool,
    /// Map slots per TaskTracker, used by `HailSplitting`.
    pub map_slots: usize,
}

impl HailInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HailInputFormat {
            dataset,
            query,
            splitting: true,
            map_slots: 2,
        }
    }

    /// Disables `HailSplitting` (the §6.4 configuration).
    pub fn without_splitting(mut self) -> Self {
        self.splitting = false;
        self
    }
}

impl InputFormat for HailInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        // HAIL computes splits from the namenode's main-memory Dir_rep —
        // no block header reads, so client_cost stays zero (§6.4.1).
        if self.splitting {
            hail_splits(cluster, input, &self.query, self.map_slots)
        } else {
            // Default (per-block) splitting, but still scheduling toward
            // the replica with the matching index.
            crate::splitting::index_aware_default_splits(cluster, input, &self.query)
        }
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let mut total = TaskStats::default();
        for &block in &split.blocks {
            let stats = read_hail_block(
                cluster,
                block,
                task_node,
                &self.dataset.schema,
                &self.query,
                emit,
            )?;
            total.merge(&stats);
        }
        Ok(total)
    }

    fn name(&self) -> &str {
        "HAIL"
    }
}

/// The standard Hadoop text input format: per-block splits, full-scan
/// record reader, filtering in the map function.
pub struct HadoopInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
    pub delimiter: char,
}

impl HadoopInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopInputFormat {
            dataset,
            query,
            delimiter: '|',
        }
    }
}

impl InputFormat for HadoopInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        default_splits(cluster, input)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let mut total = TaskStats::default();
        for &block in &split.blocks {
            let stats = read_hadoop_text_block(
                cluster,
                block,
                task_node,
                &self.dataset.schema,
                &self.query,
                self.delimiter,
                emit,
            )?;
            total.merge(&stats);
        }
        Ok(total)
    }

    fn name(&self) -> &str {
        "Hadoop"
    }
}

/// Hadoop++: per-block splits whose computation must read every block's
/// trojan-index header (the cost HAIL avoids, §6.4.1), then an
/// index-or-scan reader over the binary row layout.
pub struct HadoopPlusPlusInputFormat {
    pub dataset: Dataset,
    pub query: HailQuery,
}

impl HadoopPlusPlusInputFormat {
    pub fn new(dataset: Dataset, query: HailQuery) -> Self {
        HadoopPlusPlusInputFormat { dataset, query }
    }
}

impl InputFormat for HadoopPlusPlusInputFormat {
    fn splits(&self, cluster: &DfsCluster, input: &[BlockId]) -> Result<SplitPlan> {
        let mut plan = default_splits(cluster, input)?;
        // The JobClient fetches each block's header (trojan index
        // directory) before it can build splits.
        for &b in input {
            let header = trojan_header_bytes(cluster, b)?;
            plan.client_cost.seeks += 1;
            plan.client_cost.disk_read += header as u64;
        }
        Ok(plan)
    }

    fn read_split(
        &self,
        cluster: &DfsCluster,
        split: &InputSplit,
        task_node: DatanodeId,
        emit: &mut dyn FnMut(MapRecord),
    ) -> Result<TaskStats> {
        let mut total = TaskStats::default();
        for &block in &split.blocks {
            let stats = read_hpp_block(
                cluster,
                block,
                task_node,
                &self.dataset.schema,
                &self.query,
                emit,
            )?;
            total.merge(&stats);
        }
        Ok(total)
    }

    fn name(&self) -> &str {
        "Hadoop++"
    }
}
