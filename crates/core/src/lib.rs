//! # hail-core
//!
//! HAIL (Hadoop Aggressive Indexing Library) proper — the paper's
//! contribution, built on the `hail-dfs` replica store and the `hail-mr`
//! engine:
//!
//! - [`upload`] — the HAIL upload client (parse → PAX → per-replica
//!   sort + index inside the replication pipeline), plus the standard
//!   HDFS upload and the naive two-pass ablation
//! - [`annotation`] — the `@HailQuery` filter/projection language
//! - [`splitting`] — `HailSplitting` (multi-block splits per index
//!   replica) and default Hadoop splitting
//! - [`record_reader`] — `HailRecordReader` (index scan / scan fallback)
//!   and the Hadoop text reader
//! - [`input_format`] — the three `InputFormat`s jobs choose between
//! - [`baselines`] — Hadoop++ (trojan index, row layout)
//! - [`dataset`] — dataset handles

#![forbid(unsafe_code)]

pub mod annotation;
pub mod baselines;
pub mod dataset;
pub mod input_format;
pub mod record_reader;
pub mod splitting;
pub mod upload;

pub use annotation::{CmpOp, HailQuery, Predicate};
pub use baselines::hadoop_plus_plus::{
    read_hpp_block, upload_hadoop_plus_plus, HppUploadReport, RowBlock,
};
pub use dataset::{Dataset, DatasetFormat};
pub use input_format::{HadoopInputFormat, HadoopPlusPlusInputFormat, HailInputFormat};
pub use record_reader::{read_hadoop_text_block, read_hail_block};
pub use splitting::{default_splits, hail_splits};
pub use upload::{upload_hadoop, upload_hail, upload_hail_naive, upload_seconds};
