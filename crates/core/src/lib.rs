//! # hail-core
//!
//! HAIL (Hadoop Aggressive Indexing Library) storage side — the paper's
//! upload pipeline and query language, built on the `hail-dfs` replica
//! store:
//!
//! - [`upload`] — the HAIL upload client (parse → PAX → per-replica
//!   sort + index inside the replication pipeline), plus the standard
//!   HDFS upload and the naive two-pass ablation
//! - [`annotation`] — the `@HailQuery` filter/projection language
//! - [`baselines`] — Hadoop++'s storage format and upload jobs (trojan
//!   index, row layout)
//! - [`dataset`] — dataset handles
//! - [`knobs`] — the central registry of every `HAIL_*` environment
//!   knob (the only module in the workspace allowed to read them)
//!
//! The query side — record readers, splitting policies, input formats —
//! lives in the `hail-exec` crate behind its cost-based `QueryPlanner`,
//! so that every replica and access-path decision is made in one place.

#![forbid(unsafe_code)]

pub mod annotation;
pub mod baselines;
pub mod dataset;
pub mod knobs;
pub mod upload;

pub use annotation::{CmpOp, HailQuery, Predicate};
pub use baselines::hadoop_plus_plus::{
    encode_row_block, trojan_header_bytes, upload_hadoop_plus_plus, HppUploadReport, RowBlock,
};
pub use dataset::{Dataset, DatasetFormat};
pub use upload::{upload_hadoop, upload_hail, upload_hail_naive, upload_seconds};
