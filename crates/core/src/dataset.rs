//! Dataset handles: what an upload returns and what a job consumes.

use hail_types::{BlockId, Schema};

/// The physical format a dataset was uploaded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetFormat {
    /// Raw text lines, byte-split blocks, identical replicas (standard
    /// Hadoop/HDFS).
    HadoopText,
    /// Binary PAX with per-replica sort orders and clustered indexes
    /// (HAIL).
    HailPax,
    /// Binary row layout with one trojan index per logical block,
    /// identical replicas (Hadoop++).
    HadoopPlusPlus,
}

/// A handle on an uploaded dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    pub schema: Schema,
    pub blocks: Vec<BlockId>,
    pub format: DatasetFormat,
}

impl Dataset {
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        blocks: Vec<BlockId>,
        format: DatasetFormat,
    ) -> Self {
        Dataset {
            name: name.into(),
            schema,
            blocks,
            format,
        }
    }

    /// Number of logical blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field};

    #[test]
    fn construction() {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]).unwrap();
        let d = Dataset::new("uv", schema, vec![1, 2, 3], DatasetFormat::HailPax);
        assert_eq!(d.block_count(), 3);
        assert_eq!(d.format, DatasetFormat::HailPax);
    }
}
