//! The `HailRecordReader` (§4.3) and the baseline Hadoop text reader.
//!
//! For a filter query the HAIL reader:
//!
//! 1. asks the namenode for a replica with a matching clustered index
//!    (`getHostsWithIndex`), preferring the task's own node;
//! 2. reads the (few-KB) index entirely into memory, resolves the first
//!    and last qualifying partition in memory, and reads *only those
//!    partitions* of the needed columns from disk;
//! 3. post-filters records and reconstructs the projected attributes
//!    from PAX to row layout;
//! 4. passes bad records through to the map function with a flag.
//!
//! If no suitable replica is reachable it falls back to a full scan —
//! HAIL's failover story.

use crate::annotation::HailQuery;
use hail_dfs::DfsCluster;
use hail_index::IndexedBlock;
use hail_mr::{MapRecord, TaskStats};
use hail_types::{BlockId, DatanodeId, HailError, Result, Schema};

/// Picks the serving replica from `hosts`: the task's node if it holds
/// one, else the first (deterministic).
fn choose_host(hosts: &[DatanodeId], task_node: DatanodeId) -> Option<DatanodeId> {
    if hosts.contains(&task_node) {
        Some(task_node)
    } else {
        hosts.first().copied()
    }
}

/// Reads one block with the HAIL record reader, emitting qualifying
/// records.
pub fn read_hail_block(
    cluster: &DfsCluster,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    // Try each index-friendly filter column until a replica serves it.
    for column in query.filter_columns() {
        let hosts = cluster.namenode().get_hosts_with_index(block, column)?;
        if let Some(host) = choose_host(&hosts, task_node) {
            return index_scan(cluster, block, host, task_node, schema, query, column, emit);
        }
    }
    // No index available (or a pure scan query): full scan on any live
    // replica.
    let hosts = cluster.namenode().get_hosts(block)?;
    let host = choose_host(&hosts, task_node)
        .ok_or(HailError::UnknownBlock(block))?;
    let wanted_index = !query.filter_columns().is_empty();
    full_scan(cluster, block, host, task_node, schema, query, wanted_index, emit)
}

/// Index-scan path: read index, resolve partitions in memory, read only
/// qualifying partitions, post-filter, reconstruct.
#[allow(clippy::too_many_arguments)]
fn index_scan(
    cluster: &DfsCluster,
    block: BlockId,
    host: DatanodeId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    index_column: usize,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let dn = cluster.datanode(host)?;
    let bytes = dn.peek_replica(block)?;
    let indexed = IndexedBlock::parse(bytes)?;
    let index = indexed
        .index()
        .ok_or_else(|| HailError::Internal("replica advertised an index it lacks".into()))?;
    let pax = indexed.pax();

    let mut stats = TaskStats {
        serial_pricing: true,
        ..Default::default()
    };

    // Read the whole index into main memory ("typically a few KB").
    dn.charge_range_read(indexed.metadata().index_bytes, &mut stats.ledger)?;
    let mut remote_bytes = indexed.metadata().index_bytes as u64;

    let bounds = query
        .bounds_on(index_column)
        .ok_or_else(|| HailError::Internal("index scan without predicate".into()))?;

    if let Some((first, last)) = index.lookup(&bounds) {
        let needed = query.needed_columns(schema);
        let scan_bytes = pax.partition_scan_bytes(&needed, first, last)?;
        // The qualifying leaves are contiguous on disk: one seek + one
        // sequential read per column region.
        for _ in &needed {
            dn.charge_range_read(0, &mut stats.ledger)?; // seek per column
        }
        stats.ledger.disk_read += scan_bytes as u64;
        remote_bytes += scan_bytes as u64;
        // Post-filtering + PAX→row reconstruction over what was read.
        stats.ledger.scan_cpu += scan_bytes as u64;

        let projection = query.projected_columns(schema);
        for row in index.partition_rows(first, last) {
            let key = pax.value(index_column, row)?;
            if !bounds.contains(&key) {
                continue;
            }
            // Post-filter with the *full* conjunction — other predicates
            // may touch other columns or even the index column again
            // (e.g. `@4 >= 1 and @4 <= 10`).
            let full_ok = query.predicates.iter().all(|p| {
                pax.value(p.column(), row)
                    .map(|v| p.matches_value(&v))
                    .unwrap_or(false)
            });
            if !full_ok {
                continue;
            }
            emit(MapRecord::good(pax.reconstruct(row, &projection)?));
            stats.records += 1;
        }
    }

    // Bad records ride along to the map function (§4.3).
    emit_bad_records(&indexed, &mut stats, emit)?;

    // Remote read: qualifying parts cross the network when the task is
    // not colocated with the chosen replica.
    if host != task_node {
        stats.ledger.net_sent += remote_bytes;
    }
    Ok(stats)
}

/// Full-scan path: stream the whole replica, filter, reconstruct.
#[allow(clippy::too_many_arguments)]
fn full_scan(
    cluster: &DfsCluster,
    block: BlockId,
    host: DatanodeId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    fell_back: bool,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let dn = cluster.datanode(host)?;
    let mut stats = TaskStats {
        fell_back_to_scan: fell_back,
        ..Default::default()
    };
    let bytes = dn.read_replica(block, &mut stats.ledger)?;
    let indexed = IndexedBlock::parse(bytes)?;
    let pax = indexed.pax();

    // Predicate evaluation + tuple reconstruction stream over the block.
    stats.ledger.scan_cpu += pax.byte_len() as u64;
    if host != task_node {
        stats.ledger.net_sent += pax.byte_len() as u64;
    }

    let projection = query.projected_columns(schema);
    for row in 0..pax.row_count() {
        let ok = query.predicates.iter().all(|p| {
            pax.value(p.column(), row)
                .map(|v| p.matches_value(&v))
                .unwrap_or(false)
        });
        if ok {
            emit(MapRecord::good(pax.reconstruct(row, &projection)?));
            stats.records += 1;
        }
    }
    emit_bad_records(&indexed, &mut stats, emit)?;
    Ok(stats)
}

fn emit_bad_records(
    indexed: &IndexedBlock,
    stats: &mut TaskStats,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<()> {
    for bad in indexed.pax().bad_records()? {
        emit(MapRecord::bad(bad));
        stats.records += 1;
    }
    Ok(())
}

/// The standard Hadoop record reader over a text block: read everything,
/// split every line into fields (the expensive `v.toString().split(",")`
/// of §4.1), filter and project in the map function.
pub fn read_hadoop_text_block(
    cluster: &DfsCluster,
    block: BlockId,
    task_node: DatanodeId,
    schema: &Schema,
    query: &HailQuery,
    delimiter: char,
    emit: &mut dyn FnMut(MapRecord),
) -> Result<TaskStats> {
    let hosts = cluster.namenode().get_hosts(block)?;
    let host = choose_host(&hosts, task_node).ok_or(HailError::UnknownBlock(block))?;
    let dn = cluster.datanode(host)?;
    let mut stats = TaskStats::default();
    let bytes = dn.read_replica(block, &mut stats.ledger)?;
    // Every record is split into strings and compared — CPU over the
    // whole block.
    stats.ledger.scan_cpu += bytes.len() as u64;
    if host != task_node {
        stats.ledger.net_sent += bytes.len() as u64;
    }
    let text = std::str::from_utf8(&bytes)
        .map_err(|_| HailError::Corrupt("text block is not UTF-8".into()))?;
    let projection = query.projected_columns(schema);
    for line in text.lines() {
        match hail_types::parse_line(line, schema, delimiter) {
            hail_types::ParsedRecord::Good(row) => {
                if query.matches(&row) {
                    emit(MapRecord::good(row.project(&projection)));
                    stats.records += 1;
                }
            }
            hail_types::ParsedRecord::Bad { line, .. } => {
                emit(MapRecord::bad(line));
                stats.records += 1;
            }
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::upload::{upload_hadoop, upload_hail};
    use hail_index::ReplicaIndexConfig;
    use hail_types::{DataType, Field, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ip", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("revenue", DataType::Float),
        ])
        .unwrap()
    }

    fn text(n: usize) -> String {
        (0..n)
            .map(|i| {
                format!(
                    "10.0.{}.{}|19{:02}-01-01|{}.5\n",
                    i / 250,
                    i % 250,
                    70 + (i % 30),
                    i % 100
                )
            })
            .collect()
    }

    fn hail_setup(rows: usize) -> (DfsCluster, crate::dataset::Dataset) {
        // Small blocks need proportionally small index partitions for the
        // index to narrow anything (the paper's 64 MB block holds ~650
        // partitions of 1,024 values).
        let mut config = StorageConfig::test_scale(4096);
        config.index_partition_size = 16;
        let mut c = DfsCluster::new(4, config);
        let cfg = ReplicaIndexConfig::first_indexed(3, &[1, 0, 2]);
        let ds = upload_hail(&mut c, &schema(), "uv", &[(0, text(rows))], &cfg).unwrap();
        (c, ds)
    }

    fn collect_hail(
        c: &DfsCluster,
        ds: &crate::dataset::Dataset,
        query: &HailQuery,
    ) -> (Vec<MapRecord>, TaskStats) {
        let mut records = Vec::new();
        let mut total = TaskStats::default();
        for &b in &ds.blocks {
            let stats =
                read_hail_block(c, b, 0, &schema(), query, &mut |r| records.push(r)).unwrap();
            total.merge(&stats);
        }
        (records, total)
    }

    #[test]
    fn index_scan_equals_full_scan_results() {
        let (c, ds) = hail_setup(500);
        let q = HailQuery::parse("@2 between(1975-01-01, 1980-12-31)", "{@1}", &schema()).unwrap();
        let (with_index, stats) = collect_hail(&c, &ds, &q);
        assert!(stats.serial_pricing, "index scans are latency-bound");
        assert!(!with_index.is_empty());

        // Oracle: parse the original text and filter.
        let expected: Vec<String> = text(500)
            .lines()
            .filter(|l| {
                let date = l.split('|').nth(1).unwrap();
                ("1975-01-01"..="1980-12-31").contains(&date)
            })
            .map(|l| l.split('|').next().unwrap().to_string())
            .collect();
        let mut got: Vec<String> = with_index
            .iter()
            .filter(|r| !r.bad)
            .map(|r| r.row.get(0).unwrap().to_string())
            .collect();
        let mut expected = expected;
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn index_scan_reads_less_than_full_scan() {
        let (c, ds) = hail_setup(2000);
        // Highly selective point query on the date column.
        let q = HailQuery::parse("@2 = 1975-01-01", "{@1}", &schema()).unwrap();
        let (_, idx_stats) = collect_hail(&c, &ds, &q);

        // A no-filter query scans everything.
        let scan_q = HailQuery::parse("", "{@1}", &schema()).unwrap();
        let (_, scan_stats) = collect_hail(&c, &ds, &scan_q);
        assert!(
            idx_stats.ledger.disk_read * 4 < scan_stats.ledger.disk_read,
            "index scan ({} B) should read far less than full scan ({} B)",
            idx_stats.ledger.disk_read,
            scan_stats.ledger.disk_read
        );
        assert!(!idx_stats.fell_back_to_scan);
    }

    #[test]
    fn fallback_when_index_node_dies() {
        let (mut c, ds) = hail_setup(300);
        let q = HailQuery::parse("@2 between(1975-01-01, 1980-12-31)", "{@1}", &schema()).unwrap();
        let (before, _) = collect_hail(&c, &ds, &q);

        // Kill the nodes holding the visitDate index until none serve it.
        for &b in &ds.blocks {
            for dn in c.namenode().get_hosts_with_index(b, 1).unwrap() {
                c.kill_node(dn).unwrap();
            }
        }
        let (after, stats) = collect_hail(&c, &ds, &q);
        assert!(stats.fell_back_to_scan, "must fall back to scanning");
        let key = |records: &[MapRecord]| {
            let mut v: Vec<String> = records
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(key(&before), key(&after), "results identical after failover");
    }

    #[test]
    fn conjunction_filters_on_secondary_column() {
        let (c, ds) = hail_setup(400);
        let q = HailQuery::parse(
            "@2 between(1975-01-01, 1985-12-31) and @1 = '10.0.0.33'",
            "",
            &schema(),
        )
        .unwrap();
        let (records, _) = collect_hail(&c, &ds, &q);
        for r in records.iter().filter(|r| !r.bad) {
            assert_eq!(r.row.get(0).unwrap().to_string(), "10.0.0.33");
        }
    }

    #[test]
    fn hadoop_reader_matches_hail_results() {
        let rows = 400;
        let mut hc = DfsCluster::new(4, StorageConfig::test_scale(4096));
        let hds = upload_hadoop(&mut hc, &schema(), "uv", &[(0, text(rows))]).unwrap();
        let (pc, pds) = hail_setup(rows);

        let q = HailQuery::parse("@3 >= 10 and @3 <= 20", "{@1, @3}", &schema()).unwrap();
        let mut hadoop_records = Vec::new();
        for &b in &hds.blocks {
            read_hadoop_text_block(&hc, b, 0, &schema(), &q, '|', &mut |r| {
                hadoop_records.push(r)
            })
            .unwrap();
        }
        let (hail_records, _) = collect_hail(&pc, &pds, &q);
        let norm = |rs: &[MapRecord]| {
            let mut v: Vec<String> = rs
                .iter()
                .filter(|r| !r.bad)
                .map(|r| r.row.to_string())
                .collect();
            v.sort();
            v
        };
        assert_eq!(norm(&hadoop_records), norm(&hail_records));
    }

    #[test]
    fn bad_records_flow_to_map() {
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(1 << 20));
        let cfg = ReplicaIndexConfig::first_indexed(3, &[1]);
        let text = "1.1.1.1|1999-01-01|1.0\nBROKEN LINE\n2.2.2.2|1999-06-01|2.0\n";
        let ds = upload_hail(&mut c, &schema(), "uv", &[(0, text.into())], &cfg).unwrap();
        let q = HailQuery::parse("@2 = 1999-01-01", "", &schema()).unwrap();
        let mut records = Vec::new();
        read_hail_block(&c, ds.blocks[0], 0, &schema(), &q, &mut |r| records.push(r)).unwrap();
        let bad: Vec<_> = records.iter().filter(|r| r.bad).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].row.get(0).unwrap().as_str(), Some("BROKEN LINE"));
    }
}
