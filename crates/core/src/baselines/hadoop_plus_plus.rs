//! The Hadoop++ baseline (\[12\], §5): trojan indexes created *after*
//! upload by two additional MapReduce jobs, one identical clustered
//! index per logical block on every replica, binary **row** layout.
//!
//! The paper's comparison hinges on three structural properties, all
//! modeled here:
//!
//! 1. **Expensive index creation.** After the normal HDFS text upload,
//!    job 1 re-reads everything and rewrites it in binary (replicated
//!    3×, with a shuffle materialization), and job 2 re-reads the binary
//!    data, sorts each block, attaches the trojan index and rewrites it
//!    again — plus two full rounds of per-task scheduling overhead.
//! 2. **One index only, same on every replica**: filters on any other
//!    attribute full-scan.
//! 3. **Header reads at split time**: the JobClient fetches each block's
//!    (≈150× larger than HAIL's) index header before it can create
//!    splits, delaying job start.

use crate::dataset::{Dataset, DatasetFormat};
use crate::upload::{upload_hadoop, upload_seconds};
use bytes::Bytes;
use hail_dfs::{store_transformed_block, DfsCluster};
use hail_index::{IndexKind, IndexMetadata, TrojanIndex};
use hail_sim::{ClusterSpec, CostLedger};
use hail_types::bytes_util::{put_u32, ByteReader};
use hail_types::{
    parse_line, BlockId, DataType, DatanodeId, HailError, ParsedRecord, Result, Row, Schema, Value,
};

/// Magic for the Hadoop++ row-layout block ("HPP1").
pub const HPP_MAGIC: u32 = 0x3150_5048;

/// A binary row-layout block with an optional trojan index header.
///
/// Layout: magic, key column (+1, 0 = unindexed), row/bad counts, index
/// length, index bytes, dense per-row u32 offsets, row data (fixed
/// values little-endian, varchars zero-terminated), bad lines.
#[derive(Debug, Clone)]
pub struct RowBlock {
    key_column: Option<usize>,
    index: Option<TrojanIndex>,
    row_count: usize,
    offsets_start: usize,
    rows_start: usize,
    bad_start: usize,
    bad_count: usize,
    bytes: Bytes,
}

/// Serializes rows (already sorted if `index` is present) into the
/// Hadoop++ block format.
pub fn encode_row_block(
    schema: &Schema,
    rows: &[Row],
    bad: &[String],
    key_column: Option<usize>,
) -> Result<Bytes> {
    let index_bytes = match key_column {
        Some(col) => {
            let keys: Vec<Value> = rows
                .iter()
                .map(|r| {
                    r.get(col)
                        .cloned()
                        .ok_or(HailError::UnknownAttribute(col + 1))
                })
                .collect::<Result<_>>()?;
            let dtype = schema.field(col)?.data_type;
            TrojanIndex::build(col, dtype, &keys)?.to_bytes()
        }
        None => Vec::new(),
    };

    let mut buf = Vec::new();
    put_u32(&mut buf, HPP_MAGIC);
    put_u32(&mut buf, key_column.map(|c| c as u32 + 1).unwrap_or(0));
    put_u32(&mut buf, rows.len() as u32);
    put_u32(&mut buf, bad.len() as u32);
    put_u32(&mut buf, index_bytes.len() as u32);
    buf.extend_from_slice(&index_bytes);

    // Dense row offsets (what makes random access in row layout cheap).
    let offsets_pos = buf.len();
    for _ in rows {
        put_u32(&mut buf, 0);
    }
    let rows_start = buf.len();
    for (i, row) in rows.iter().enumerate() {
        let off = (buf.len() - rows_start) as u32;
        buf[offsets_pos + i * 4..offsets_pos + i * 4 + 4].copy_from_slice(&off.to_le_bytes());
        for v in row.values() {
            match v {
                Value::Int(x) | Value::Date(x) => buf.extend_from_slice(&x.to_le_bytes()),
                Value::Long(x) => buf.extend_from_slice(&x.to_le_bytes()),
                Value::Float(x) => buf.extend_from_slice(&x.to_bits().to_le_bytes()),
                Value::Str(s) => {
                    buf.extend_from_slice(s.as_bytes());
                    buf.push(0);
                }
            }
        }
    }
    for line in bad {
        buf.extend_from_slice(line.as_bytes());
        buf.push(0);
    }
    Ok(Bytes::from(buf))
}

impl RowBlock {
    /// Parses the header of a serialized Hadoop++ block.
    pub fn parse(bytes: Bytes) -> Result<RowBlock> {
        let mut r = ByteReader::new(&bytes);
        let magic = r.u32()?;
        if magic != HPP_MAGIC {
            return Err(HailError::Corrupt(format!("bad HPP magic {magic:#010x}")));
        }
        let key_raw = r.u32()? as usize;
        let key_column = key_raw.checked_sub(1);
        let row_count = r.u32()? as usize;
        let bad_count = r.u32()? as usize;
        let index_len = r.u32()? as usize;
        let index_start = r.position();
        if index_start + index_len > bytes.len() {
            return Err(HailError::Corrupt("truncated trojan index".into()));
        }
        let index = if index_len > 0 {
            Some(TrojanIndex::from_bytes(
                &bytes[index_start..index_start + index_len],
            )?)
        } else {
            None
        };
        let offsets_start = index_start + index_len;
        let rows_start = offsets_start + row_count * 4;
        if rows_start > bytes.len() {
            return Err(HailError::Corrupt("truncated row offsets".into()));
        }
        // Bad section begins after the last row; locate it by scanning
        // the last row's encoded values when rows exist.
        Ok(RowBlock {
            key_column,
            index,
            row_count,
            offsets_start,
            rows_start,
            bad_start: usize::MAX, // resolved lazily in bad_records()
            bad_count,
            bytes,
        })
    }

    pub fn row_count(&self) -> usize {
        self.row_count
    }

    pub fn bad_count(&self) -> usize {
        self.bad_count
    }

    pub fn key_column(&self) -> Option<usize> {
        self.key_column
    }

    pub fn index(&self) -> Option<&TrojanIndex> {
        self.index.as_ref()
    }

    /// Size of the header the JobClient must read at split time (index +
    /// fixed fields).
    pub fn header_bytes(&self) -> usize {
        self.offsets_start
    }

    /// Total serialized size.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    fn row_offset(&self, row: usize) -> usize {
        let at = self.offsets_start + row * 4;
        self.rows_start + u32::from_le_bytes(self.bytes[at..at + 4].try_into().unwrap()) as usize
    }

    /// Decodes one full row.
    pub fn row(&self, schema: &Schema, row: usize) -> Result<Row> {
        if row >= self.row_count {
            return Err(HailError::Corrupt(format!("row {row} out of range")));
        }
        let mut r = ByteReader::new(&self.bytes);
        r.seek(self.row_offset(row))?;
        let mut values = Vec::with_capacity(schema.len());
        for f in schema.fields() {
            values.push(match f.data_type {
                DataType::Int => Value::Int(r.i32()?),
                DataType::Date => Value::Date(r.i32()?),
                DataType::Long => Value::Long(r.i64()?),
                DataType::Float => Value::Float(r.f64()?),
                DataType::VarChar => Value::Str(
                    String::from_utf8(r.cstr()?.to_vec())
                        .map_err(|_| HailError::Corrupt("bad UTF-8 in row".into()))?,
                ),
            });
        }
        Ok(Row::new(values))
    }

    /// Byte length of the row range `[start, end)` — what an index scan
    /// reads from disk.
    pub fn row_range_bytes(&self, schema: &Schema, start: usize, end: usize) -> Result<usize> {
        if start >= end || start >= self.row_count {
            return Ok(0);
        }
        let end = end.min(self.row_count);
        let from = self.row_offset(start);
        let to = if end == self.row_count {
            self.rows_end(schema)?
        } else {
            self.row_offset(end)
        };
        Ok(to - from)
    }

    /// Offset one past the last row (= bad-section start).
    fn rows_end(&self, schema: &Schema) -> Result<usize> {
        if self.row_count == 0 {
            return Ok(self.rows_start);
        }
        // Walk the last row.
        let mut r = ByteReader::new(&self.bytes);
        r.seek(self.row_offset(self.row_count - 1))?;
        for f in schema.fields() {
            match f.data_type {
                DataType::Int | DataType::Date => {
                    r.i32()?;
                }
                DataType::Long => {
                    r.i64()?;
                }
                DataType::Float => {
                    r.f64()?;
                }
                DataType::VarChar => {
                    r.cstr()?;
                }
            }
        }
        Ok(r.position())
    }

    /// The stored bad-record lines.
    pub fn bad_records(&self, schema: &Schema) -> Result<Vec<String>> {
        let start = if self.bad_start == usize::MAX {
            self.rows_end(schema)?
        } else {
            self.bad_start
        };
        let mut r = ByteReader::new(&self.bytes);
        r.seek(start)?;
        let mut out = Vec::with_capacity(self.bad_count);
        for _ in 0..self.bad_count {
            out.push(
                String::from_utf8(r.cstr()?.to_vec())
                    .map_err(|_| HailError::Corrupt("bad UTF-8 in bad record".into()))?,
            );
        }
        Ok(out)
    }
}

/// Breakdown of a Hadoop++ upload: text upload plus the indexing jobs.
#[derive(Debug, Clone)]
pub struct HppUploadReport {
    pub text_upload_seconds: f64,
    /// Data-movement seconds of each post-upload MR job.
    pub job_data_seconds: Vec<f64>,
    /// Framework seconds (task scheduling waves) of each job.
    pub job_framework_seconds: Vec<f64>,
}

impl HppUploadReport {
    pub fn total_seconds(&self) -> f64 {
        self.text_upload_seconds
            + self.job_data_seconds.iter().sum::<f64>()
            + self.job_framework_seconds.iter().sum::<f64>()
    }
}

/// Framework time of one MR job over `blocks` tasks: startup plus map
/// and reduce scheduling waves.
fn job_framework_seconds(spec: &ClusterSpec, blocks: usize) -> f64 {
    let slots = spec.total_map_slots().max(1);
    let waves = (blocks as f64 / slots as f64).ceil();
    // Map wave + reduce wave, both paying per-task overhead.
    spec.profile.job_startup_s + 2.0 * waves * spec.profile.task_overhead_s
}

/// Uploads a dataset the Hadoop++ way: HDFS text upload, then two
/// MapReduce jobs (binary conversion; sorting + trojan-index creation).
/// With `key_column = None` only the conversion job runs (the paper's
/// "0 indexes" Hadoop++ configuration).
pub fn upload_hadoop_plus_plus(
    cluster: &mut DfsCluster,
    spec: &ClusterSpec,
    schema: &Schema,
    name: &str,
    node_texts: &[(DatanodeId, String)],
    key_column: Option<usize>,
) -> Result<(Dataset, HppUploadReport)> {
    // Phase 0: plain HDFS upload of the text.
    let text_ds = upload_hadoop(cluster, schema, name, node_texts)?;
    let text_upload_seconds = upload_seconds(cluster, spec);
    cluster.reset_ledgers();

    // Job 1: convert every block to binary row layout (unsorted, no
    // index yet), written back with full replication + shuffle
    // materialization.
    let mut binary_blocks: Vec<BlockId> = Vec::new();
    for &text_block in &text_ds.blocks {
        let hosts = cluster.namenode().get_hosts(text_block)?;
        let reader = hosts[0];
        let mut ledger = CostLedger::new();
        let raw = cluster
            .datanode(reader)?
            .read_replica(text_block, &mut ledger)?;
        ledger.parse_cpu += raw.len() as u64;
        let text = std::str::from_utf8(&raw)
            .map_err(|_| HailError::Corrupt("text block is not UTF-8".into()))?;
        let mut rows = Vec::new();
        let mut bad = Vec::new();
        for line in text.lines() {
            match parse_line(line, schema, '|') {
                ParsedRecord::Good(r) => rows.push(r),
                ParsedRecord::Bad { line, .. } => bad.push(line),
            }
        }
        let payload = encode_row_block(schema, &rows, &bad, None)?;
        // Shuffle materialization: map output hits local disk, crosses
        // the network, and is merge-read by the reducer.
        ledger.disk_write += payload.len() as u64;
        ledger.net_sent += payload.len() as u64;
        ledger.disk_read += payload.len() as u64;
        ledger.sort_cpu += payload.len() as u64;
        cluster.datanode_mut(reader)?.add_extra(&ledger);
        binary_blocks.push(store_transformed_block(
            cluster,
            reader,
            payload,
            IndexMetadata::none(),
        )?);
    }
    let mut job_data_seconds = vec![upload_seconds(cluster, spec)];
    let mut job_framework_seconds_v = vec![job_framework_seconds(spec, text_ds.blocks.len())];
    cluster.reset_ledgers();

    // Job 2 (optional): sort each block on the key and attach the trojan
    // index.
    let final_blocks = match key_column {
        None => binary_blocks,
        Some(key) => {
            let mut indexed_blocks = Vec::new();
            for &bin_block in &binary_blocks {
                let hosts = cluster.namenode().get_hosts(bin_block)?;
                let reader = hosts[0];
                let mut ledger = CostLedger::new();
                let raw = cluster
                    .datanode(reader)?
                    .read_replica(bin_block, &mut ledger)?;
                let block = RowBlock::parse(raw)?;
                let mut rows: Vec<Row> = (0..block.row_count())
                    .map(|i| block.row(schema, i))
                    .collect::<Result<_>>()?;
                let bad = block.bad_records(schema)?;
                rows.sort_by(|a, b| a.get(key).unwrap().cmp(b.get(key).unwrap()));
                let payload = encode_row_block(schema, &rows, &bad, Some(key))?;
                let index_len = RowBlock::parse(payload.clone())?
                    .index()
                    .map(TrojanIndex::byte_len)
                    .unwrap_or(0);
                // Sorting + shuffle materialization.
                ledger.sort_cpu += payload.len() as u64;
                ledger.disk_write += payload.len() as u64;
                ledger.net_sent += payload.len() as u64;
                ledger.disk_read += payload.len() as u64;
                cluster.datanode_mut(reader)?.add_extra(&ledger);
                let meta = IndexMetadata {
                    kind: IndexKind::Trojan,
                    key_column: Some(key),
                    index_bytes: index_len,
                    index_offset: 20,
                    sidecars: Vec::new(),
                };
                indexed_blocks.push(store_transformed_block(cluster, reader, payload, meta)?);
            }
            job_data_seconds.push(upload_seconds(cluster, spec));
            job_framework_seconds_v.push(job_framework_seconds(spec, binary_blocks.len()));
            cluster.reset_ledgers();
            indexed_blocks
        }
    };

    Ok((
        Dataset::new(
            name,
            schema.clone(),
            final_blocks,
            DatasetFormat::HadoopPlusPlus,
        ),
        HppUploadReport {
            text_upload_seconds,
            job_data_seconds,
            job_framework_seconds: job_framework_seconds_v,
        },
    ))
}

/// Header size the JobClient reads per block during split computation.
pub fn trojan_header_bytes(cluster: &DfsCluster, block: BlockId) -> Result<usize> {
    let hosts = cluster.namenode().get_hosts(block)?;
    let Some(&h) = hosts.first() else {
        return Err(HailError::UnknownBlock(block));
    };
    let info = cluster.namenode().replica_info(block, h)?;
    // Fixed header fields + the trojan index itself.
    Ok(20 + info.index.index_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_sim::HardwareProfile;
    use hail_types::{Field, StorageConfig};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ip", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("revenue", DataType::Float),
        ])
        .unwrap()
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Str(format!("10.0.0.{}", i % 200)),
                    Value::Date((i % 1000) as i32),
                    Value::Float(i as f64 / 10.0),
                ])
            })
            .collect()
    }

    #[test]
    fn row_block_round_trip() {
        let s = schema();
        let rs = rows(50);
        let bytes = encode_row_block(&s, &rs, &["oops".into()], None).unwrap();
        let block = RowBlock::parse(bytes).unwrap();
        assert_eq!(block.row_count(), 50);
        assert_eq!(block.bad_count(), 1);
        assert!(block.index().is_none());
        for (i, expected) in rs.iter().enumerate() {
            assert_eq!(&block.row(&s, i).unwrap(), expected);
        }
        assert_eq!(block.bad_records(&s).unwrap(), vec!["oops".to_string()]);
    }

    #[test]
    fn indexed_row_block() {
        let s = schema();
        let mut rs = rows(100);
        rs.sort_by(|a, b| a.get(1).unwrap().cmp(b.get(1).unwrap()));
        let bytes = encode_row_block(&s, &rs, &[], Some(1)).unwrap();
        let block = RowBlock::parse(bytes).unwrap();
        let idx = block.index().expect("trojan index");
        assert_eq!(idx.key_column(), 1);
        assert!(block.header_bytes() > 20);
    }

    #[test]
    fn row_range_bytes_are_monotonic() {
        let s = schema();
        let rs = rows(40);
        let bytes = encode_row_block(&s, &rs, &[], None).unwrap();
        let block = RowBlock::parse(bytes).unwrap();
        let b1 = block.row_range_bytes(&s, 0, 10).unwrap();
        let b2 = block.row_range_bytes(&s, 0, 20).unwrap();
        assert!(b2 > b1);
        assert_eq!(block.row_range_bytes(&s, 5, 5).unwrap(), 0);
        let all = block.row_range_bytes(&s, 0, 40).unwrap();
        assert!(all < block.byte_len());
    }

    fn node_texts(nodes: usize, rows_per_node: usize) -> Vec<(DatanodeId, String)> {
        (0..nodes)
            .map(|n| {
                let t: String = (0..rows_per_node)
                    .map(|i| {
                        format!(
                            "10.{n}.0.{}|19{:02}-0{}-01|{}.25\n",
                            i % 250,
                            70 + (i % 29),
                            1 + (i % 9),
                            i % 50
                        )
                    })
                    .collect();
                (n, t)
            })
            .collect()
    }

    #[test]
    fn upload_produces_indexed_dataset_and_costs_more() {
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let texts = node_texts(4, 150);

        let mut plain = DfsCluster::new(4, StorageConfig::test_scale(4096));
        upload_hadoop(&mut plain, &schema(), "uv", &texts).unwrap();
        let t_hadoop = upload_seconds(&plain, &spec);

        let mut hpp = DfsCluster::new(4, StorageConfig::test_scale(4096));
        let (ds, report) =
            upload_hadoop_plus_plus(&mut hpp, &spec, &schema(), "uv", &texts, Some(0)).unwrap();
        assert_eq!(ds.format, DatasetFormat::HadoopPlusPlus);
        assert!(!ds.blocks.is_empty());
        assert!(
            report.total_seconds() > 2.0 * t_hadoop,
            "Hadoop++ upload ({:.2}s) must far exceed Hadoop ({t_hadoop:.2}s)",
            report.total_seconds()
        );
        assert_eq!(report.job_data_seconds.len(), 2);

        // Every block's replicas carry the same trojan index on column 0.
        for &b in &ds.blocks {
            let hosts = hpp.namenode().get_hosts(b).unwrap();
            for h in hosts {
                let info = hpp.namenode().replica_info(b, h).unwrap();
                assert_eq!(info.index.kind, IndexKind::Trojan);
                assert_eq!(info.index.key_column, Some(0));
            }
        }
    }

    #[test]
    fn header_bytes_reported() {
        let spec = ClusterSpec::new(4, HardwareProfile::physical());
        let mut c = DfsCluster::new(4, StorageConfig::test_scale(4096));
        let (ds, _) =
            upload_hadoop_plus_plus(&mut c, &spec, &schema(), "uv", &node_texts(2, 200), Some(1))
                .unwrap();
        for &b in &ds.blocks {
            let h = trojan_header_bytes(&c, b).unwrap();
            assert!(h > 20, "header must include the index: {h}");
        }
    }
}
