//! Baseline systems the paper compares against.
//!
//! The standard *Hadoop* baseline is split across
//! [`crate::upload::upload_hadoop`] (text upload) and the `hail-exec`
//! crate's full-scan access path (query side); *Hadoop++*'s storage
//! format and upload jobs live in [`hadoop_plus_plus`], its read path
//! in `hail-exec`'s trojan access path.

pub mod hadoop_plus_plus;
