//! Baseline systems the paper compares against.
//!
//! The standard *Hadoop* baseline is split across
//! [`crate::upload::upload_hadoop`] (text upload) and
//! [`crate::input_format::HadoopInputFormat`] (full-scan query path);
//! *Hadoop++* lives in [`hadoop_plus_plus`].

pub mod hadoop_plus_plus;
