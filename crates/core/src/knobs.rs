//! The central registry of every `HAIL_*` environment knob.
//!
//! Every runtime-tunable environment variable the engine reads is
//! declared here — name, parse rule, default, and one documentation
//! line — and every read goes through this module's typed accessors.
//! Nothing else in the workspace may call `std::env::var`: the
//! `hail-lint` `knob-registry` rule fails CI on any `HAIL_*` read (or
//! any `env::var` call at all) outside this file, so a knob cannot be
//! added without registering it, and two call sites cannot silently
//! parse the same variable differently.
//!
//! [`list`] enumerates the registry for the lint and for the generated
//! knob table in ARCHITECTURE.md ("Concurrency invariants &
//! enforcement"); [`doc_table`] renders that table.
//!
//! Parse rules are deliberately preserved bit-for-bit from the
//! pre-registry call sites (CI matrix legs pin them):
//!
//! - [`KnobKind::Count`]: unset, unparsable, or `0` mean 1 — "absent
//!   means no concurrency".
//! - [`KnobKind::DisableFlag`]: the feature is ON unless the variable
//!   is set to a non-empty value other than `0` (after trimming).
//! - [`KnobKind::DisableFlagExact`]: the feature is ON unless the
//!   variable is exactly `1` (the historical `HAIL_DISABLE_REINDEX`
//!   contract).
//! - [`KnobKind::CheckFlag`]: the check is ON unless the variable is
//!   set to `0` — and only ever consulted in debug builds
//!   (`hail-sync` compiles its rank checking out of release builds
//!   entirely, so release never pays even the read).

/// How a knob's raw string value is interpreted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnobKind {
    /// A positive count; unset/unparsable/`0` → 1.
    Count,
    /// Feature on unless set non-empty and not `0` (trimmed).
    DisableFlag,
    /// Feature on unless the value is exactly `1`.
    DisableFlagExact,
    /// Debug-build check on unless the value is `0`.
    CheckFlag,
}

/// One registered environment knob.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// The environment variable name (always `HAIL_*`).
    pub name: &'static str,
    /// Parse rule.
    pub kind: KnobKind,
    /// Human-readable effective default (what an unset variable means).
    pub default: &'static str,
    /// One-line description for the generated doc table.
    pub doc: &'static str,
}

impl Knob {
    /// The raw environment value, if set. The single `env::var` choke
    /// point for the whole workspace.
    pub fn read_raw(&self) -> Option<String> {
        std::env::var(self.name).ok()
    }

    /// Parses this knob as a [`KnobKind::Count`].
    pub fn count(&self) -> usize {
        debug_assert_eq!(self.kind, KnobKind::Count);
        self.read_raw()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(1)
    }

    /// Parses this knob as an on/off state per its [`KnobKind`]
    /// (`true` = the guarded feature/check is enabled).
    pub fn enabled(&self) -> bool {
        match self.kind {
            KnobKind::Count => self.count() > 1,
            KnobKind::DisableFlag => !self
                .read_raw()
                .map(|v| !v.trim().is_empty() && v.trim() != "0")
                .unwrap_or(false),
            KnobKind::DisableFlagExact => !self.read_raw().map(|v| v == "1").unwrap_or(false),
            KnobKind::CheckFlag => !self.read_raw().map(|v| v.trim() == "0").unwrap_or(false),
        }
    }
}

/// Intra-split read parallelism: worker threads fanning one split's
/// block reads (`crate::knobs::parallelism`).
pub const PARALLELISM: Knob = Knob {
    name: "HAIL_PARALLELISM",
    kind: KnobKind::Count,
    default: "1 (serial)",
    doc: "Worker threads fanning one split's block reads.",
};

/// Job-level split overlap: how many whole splits of one job may
/// execute at once.
pub const JOB_PARALLELISM: Knob = Knob {
    name: "HAIL_JOB_PARALLELISM",
    kind: KnobKind::Count,
    default: "1 (sequential splits)",
    doc: "Whole splits of one job overlapping on the work-stealing JobPool.",
};

/// The `JobManager`'s in-flight job bound.
pub const MAX_CONCURRENT_JOBS: Knob = Knob {
    name: "HAIL_MAX_CONCURRENT_JOBS",
    kind: KnobKind::Count,
    default: "1 (serial admission)",
    doc: "Concurrent jobs the JobManager keeps in flight (FIFO admission).",
};

/// Kill switch for cooperative scan sharing.
pub const DISABLE_SCAN_SHARING: Knob = Knob {
    name: "HAIL_DISABLE_SCAN_SHARING",
    kind: KnobKind::DisableFlag,
    default: "sharing on",
    doc: "Set non-zero to make every job read independently (no shared decodes).",
};

/// Kill switch for zone-map/Bloom synopsis pruning.
pub const DISABLE_SYNOPSES: Knob = Knob {
    name: "HAIL_DISABLE_SYNOPSES",
    kind: KnobKind::DisableFlag,
    default: "pruning on",
    doc: "Set non-zero to price every block instead of skipping via synopses.",
};

/// Kill switch for adaptive re-indexing.
pub const DISABLE_REINDEX: Knob = Knob {
    name: "HAIL_DISABLE_REINDEX",
    kind: KnobKind::DisableFlagExact,
    default: "re-indexing on",
    doc: "Set to exactly 1 to freeze the physical design (no advisor rewrites).",
};

/// Debug-build lock-rank checking in `hail-sync`.
pub const LOCK_ORDER_CHECK: Knob = Knob {
    name: "HAIL_LOCK_ORDER_CHECK",
    kind: KnobKind::CheckFlag,
    default: "on in debug builds, compiled out of release",
    doc: "Set to 0 to silence hail-sync's lock-hierarchy checker in debug builds.",
};

/// Every registered knob, in documentation order. The lint's
/// `doc-sync` rule checks ARCHITECTURE.md's knob table against this
/// list (via the source), so a knob cannot be added without a doc row.
pub fn list() -> &'static [Knob] {
    &[
        PARALLELISM,
        JOB_PARALLELISM,
        MAX_CONCURRENT_JOBS,
        DISABLE_SCAN_SHARING,
        DISABLE_SYNOPSES,
        DISABLE_REINDEX,
        LOCK_ORDER_CHECK,
    ]
}

/// Renders the registry as the markdown table embedded in
/// ARCHITECTURE.md between the `knob-table` markers.
pub fn doc_table() -> String {
    let mut out = String::from("| Knob | Default | Effect |\n|---|---|---|\n");
    for k in list() {
        out.push_str(&format!("| `{}` | {} | {} |\n", k.name, k.default, k.doc));
    }
    out
}

/// Intra-split parallelism ([`PARALLELISM`]).
pub fn parallelism() -> usize {
    PARALLELISM.count()
}

/// Job-level split overlap ([`JOB_PARALLELISM`]).
pub fn job_parallelism() -> usize {
    JOB_PARALLELISM.count()
}

/// The manager's in-flight job bound ([`MAX_CONCURRENT_JOBS`]).
pub fn max_concurrent_jobs() -> usize {
    MAX_CONCURRENT_JOBS.count()
}

/// Whether cooperative scan sharing is enabled.
pub fn scan_sharing_enabled() -> bool {
    DISABLE_SCAN_SHARING.enabled()
}

/// Whether synopsis pruning is enabled.
pub fn synopsis_pruning_enabled() -> bool {
    DISABLE_SYNOPSES.enabled()
}

/// Whether adaptive re-indexing is enabled.
pub fn reindex_enabled() -> bool {
    DISABLE_REINDEX.enabled()
}

/// Whether debug-build lock-rank checking is requested. `hail-sync`
/// consults this once (release builds compile the checker out and
/// never call it).
pub fn lock_order_check() -> bool {
    LOCK_ORDER_CHECK.enabled()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_hail_prefixed() {
        let names: Vec<&str> = list().iter().map(|k| k.name).collect();
        for name in &names {
            assert!(name.starts_with("HAIL_"), "{name} must be HAIL_-prefixed");
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate knob registered");
    }

    #[test]
    fn counts_clamp_to_one_and_flags_default_on() {
        // The suite cannot mutate the process environment safely, but
        // the contracts hold whatever CI's matrix leg set: counts are
        // ≥ 1, and the doc table names every knob.
        assert!(parallelism() >= 1);
        assert!(job_parallelism() >= 1);
        assert!(max_concurrent_jobs() >= 1);
        let table = doc_table();
        for k in list() {
            assert!(table.contains(k.name), "doc table missing {}", k.name);
        }
    }

    #[test]
    fn parse_rules_match_historical_call_sites() {
        // DisableFlag: non-empty, non-zero disables (trimmed).
        let f = |v: Option<&str>| {
            !v.map(|v| !v.trim().is_empty() && v.trim() != "0")
                .unwrap_or(false)
        };
        assert!(f(None) && f(Some("")) && f(Some("0")) && f(Some(" 0 ")));
        assert!(!f(Some("1")) && !f(Some("yes")));
        // DisableFlagExact: only the exact string "1" disables.
        let g = |v: Option<&str>| !v.map(|v| v == "1").unwrap_or(false);
        assert!(g(None) && g(Some("true")) && g(Some(" 1")));
        assert!(!g(Some("1")));
    }
}
