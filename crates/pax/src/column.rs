//! In-memory column representations used while building, sorting and
//! re-encoding PAX blocks.

use hail_types::{DataType, HailError, Result, Value};

/// A fully decoded column: one dense, typed vector.
///
/// This is the working representation the upload pipeline sorts and
/// permutes in main memory — the paper's observation is that a whole block
/// (64 MB–1 GB) comfortably fits in RAM, so we never sort on serialized
/// bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i32>),
    Long(Vec<i64>),
    Float(Vec<f64>),
    Date(Vec<i32>),
    Str(Vec<String>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn new(data_type: DataType) -> Self {
        match data_type {
            DataType::Int => ColumnData::Int(Vec::new()),
            DataType::Long => ColumnData::Long(Vec::new()),
            DataType::Float => ColumnData::Float(Vec::new()),
            DataType::Date => ColumnData::Date(Vec::new()),
            DataType::VarChar => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(data_type: DataType, cap: usize) -> Self {
        match data_type {
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Long => ColumnData::Long(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Date => ColumnData::Date(Vec::with_capacity(cap)),
            DataType::VarChar => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Long(_) => DataType::Long,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Date(_) => DataType::Date,
            ColumnData::Str(_) => DataType::VarChar,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) | ColumnData::Date(v) => v.len(),
            ColumnData::Long(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True if the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a value; errors on type mismatch.
    pub fn push(&mut self, value: &Value) -> Result<()> {
        match (self, value) {
            (ColumnData::Int(v), Value::Int(x)) => v.push(*x),
            (ColumnData::Long(v), Value::Long(x)) => v.push(*x),
            (ColumnData::Float(v), Value::Float(x)) => v.push(*x),
            (ColumnData::Date(v), Value::Date(x)) => v.push(*x),
            (ColumnData::Str(v), Value::Str(x)) => v.push(x.clone()),
            (col, value) => {
                return Err(HailError::Schema(format!(
                    "cannot push {} value into {} column",
                    value.data_type(),
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Value at index (panics out of range, like slice indexing).
    pub fn value(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[idx]),
            ColumnData::Long(v) => Value::Long(v[idx]),
            ColumnData::Float(v) => Value::Float(v[idx]),
            ColumnData::Date(v) => Value::Date(v[idx]),
            ColumnData::Str(v) => Value::Str(v[idx].clone()),
        }
    }

    /// Applies a permutation: output position `i` takes the value at input
    /// position `perm[i]`. This is the "sort index" reorganization of
    /// §3.5: once the key column is sorted, every other column is permuted
    /// with the same index.
    pub fn permute(&self, perm: &[usize]) -> ColumnData {
        debug_assert_eq!(perm.len(), self.len());
        match self {
            ColumnData::Int(v) => ColumnData::Int(perm.iter().map(|&i| v[i]).collect()),
            ColumnData::Long(v) => ColumnData::Long(perm.iter().map(|&i| v[i]).collect()),
            ColumnData::Float(v) => ColumnData::Float(perm.iter().map(|&i| v[i]).collect()),
            ColumnData::Date(v) => ColumnData::Date(perm.iter().map(|&i| v[i]).collect()),
            ColumnData::Str(v) => ColumnData::Str(perm.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Total serialized size of this column's value data in bytes
    /// (excluding any offset list).
    pub fn value_bytes(&self) -> usize {
        match self {
            ColumnData::Int(v) | ColumnData::Date(v) => v.len() * 4,
            ColumnData::Long(v) => v.len() * 8,
            ColumnData::Float(v) => v.len() * 8,
            ColumnData::Str(v) => v.iter().map(|s| s.len() + 1).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = ColumnData::new(DataType::Int);
        c.push(&Value::Int(5)).unwrap();
        c.push(&Value::Int(-1)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int(-1));
    }

    #[test]
    fn push_type_mismatch() {
        let mut c = ColumnData::new(DataType::Int);
        assert!(c.push(&Value::Str("x".into())).is_err());
        assert!(c.push(&Value::Long(1)).is_err());
    }

    #[test]
    fn permutation_reorders() {
        let mut c = ColumnData::new(DataType::VarChar);
        for s in ["b", "c", "a"] {
            c.push(&Value::Str(s.into())).unwrap();
        }
        let p = c.permute(&[2, 0, 1]);
        assert_eq!(p.value(0), Value::Str("a".into()));
        assert_eq!(p.value(1), Value::Str("b".into()));
        assert_eq!(p.value(2), Value::Str("c".into()));
    }

    #[test]
    fn value_bytes_accounts_terminators() {
        let mut c = ColumnData::new(DataType::VarChar);
        c.push(&Value::Str("ab".into())).unwrap();
        c.push(&Value::Str("".into())).unwrap();
        assert_eq!(c.value_bytes(), 3 + 1);
        let mut f = ColumnData::new(DataType::Float);
        f.push(&Value::Float(1.0)).unwrap();
        assert_eq!(f.value_bytes(), 8);
    }

    #[test]
    fn with_capacity_types() {
        for t in [
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Date,
            DataType::VarChar,
        ] {
            let c = ColumnData::with_capacity(t, 16);
            assert_eq!(c.data_type(), t);
            assert!(c.is_empty());
        }
    }
}
