//! CRC-32 chunk checksums and packet framing.
//!
//! HDFS partitions every block into 512-byte chunks and keeps a CRC per
//! chunk; chunks are collected into packets of at most 64 KB which are the
//! unit of transfer in the upload pipeline (§3.2). The checksums live in a
//! separate file next to each replica's data file and are re-used whenever
//! data travels over the network.
//!
//! HAIL keeps this mechanism intact but recomputes the checksums on every
//! datanode after its local sort — each replica's bytes differ, so each
//! replica's checksum file differs too.

use hail_types::config::{CHUNK_SIZE, PACKET_SIZE};
use hail_types::{HailError, Result};

/// CRC-32 (IEEE 802.3) lookup table, generated at first use.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// Computes the CRC-32 of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Splits a byte buffer into 512-byte chunks (the last chunk may be
/// shorter) and returns one CRC per chunk.
pub fn chunk_checksums(data: &[u8]) -> Vec<u32> {
    data.chunks(CHUNK_SIZE).map(crc32).collect()
}

/// Verifies every chunk of `data` against the stored checksums, returning
/// the index of the first mismatching chunk on failure.
pub fn verify_chunks(data: &[u8], checksums: &[u32]) -> Result<()> {
    let chunks: Vec<&[u8]> = data.chunks(CHUNK_SIZE).collect();
    if chunks.len() != checksums.len() {
        return Err(HailError::Corrupt(format!(
            "checksum count mismatch: {} chunks, {} checksums",
            chunks.len(),
            checksums.len()
        )));
    }
    for (i, (chunk, &expected)) in chunks.iter().zip(checksums).enumerate() {
        let actual = crc32(chunk);
        if actual != expected {
            return Err(HailError::ChecksumMismatch {
                chunk_index: i,
                expected,
                actual,
            });
        }
    }
    Ok(())
}

/// Serializes a checksum list into the on-disk checksum-file format
/// (a bare little-endian u32 array).
pub fn checksums_to_bytes(checksums: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(checksums.len() * 4);
    for &c in checksums {
        out.extend_from_slice(&c.to_le_bytes());
    }
    out
}

/// Parses a checksum file written by [`checksums_to_bytes`].
pub fn checksums_from_bytes(bytes: &[u8]) -> Result<Vec<u32>> {
    if !bytes.len().is_multiple_of(4) {
        return Err(HailError::Corrupt(format!(
            "checksum file length {} not a multiple of 4",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Fixed per-packet metadata overhead (sequence number, block offset,
/// flags, counts) budgeted against [`PACKET_SIZE`].
const PACKET_HEADER_BYTES: usize = 32;

/// How many 512-byte chunks fit into one packet alongside their checksums
/// and the header.
pub const CHUNKS_PER_PACKET: usize = (PACKET_SIZE - PACKET_HEADER_BYTES) / (CHUNK_SIZE + 4);

/// A packet: the unit of transfer in the (HDFS and HAIL) upload pipeline.
///
/// Carries a contiguous run of chunks of one block plus one CRC per chunk.
/// `seqno` orders packets within a block; `last` marks the block's final
/// packet, whose ACK has stronger semantics (it is only sent once the
/// whole replica — data and checksums — has been flushed, §3.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// 0-based sequence number within the block.
    pub seqno: u32,
    /// Byte offset of this packet's payload within the block.
    pub offset: u64,
    /// Payload bytes (up to [`CHUNKS_PER_PACKET`] × 512).
    pub data: Vec<u8>,
    /// One CRC-32 per 512-byte chunk of `data`.
    pub checksums: Vec<u32>,
    /// True for the final packet of a block.
    pub last: bool,
}

impl Packet {
    /// Total bytes this packet occupies on the wire (payload + checksums +
    /// header). The cost model charges this amount to the network.
    pub fn wire_bytes(&self) -> usize {
        self.data.len() + self.checksums.len() * 4 + PACKET_HEADER_BYTES
    }

    /// Recomputes chunk CRCs and compares with the carried checksums
    /// (what DN3, the tail of the chain, does for every packet).
    pub fn verify(&self) -> Result<()> {
        verify_chunks(&self.data, &self.checksums)
    }
}

/// Cuts a block's bytes into a packet sequence with per-chunk CRCs.
///
/// Always produces at least one packet (an empty block yields one empty
/// `last` packet) so the ACK protocol has something to acknowledge.
pub fn packetize(block: &[u8]) -> Vec<Packet> {
    let payload = CHUNKS_PER_PACKET * CHUNK_SIZE;
    let n_packets = block.len().div_ceil(payload).max(1);
    let mut packets = Vec::with_capacity(n_packets);
    for i in 0..n_packets {
        let start = i * payload;
        let end = ((i + 1) * payload).min(block.len());
        let data = block[start..end].to_vec();
        let checksums = chunk_checksums(&data);
        packets.push(Packet {
            seqno: i as u32,
            offset: start as u64,
            data,
            checksums,
            last: i + 1 == n_packets,
        });
    }
    packets
}

/// Reassembles a block from its packets (what each HAIL datanode does in
/// main memory before sorting, §3.2 step 6).
///
/// Verifies ordering, contiguity, and the `last` flag; does *not* verify
/// checksums — that is the chain tail's job.
pub fn reassemble(packets: &[Packet]) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    for (i, p) in packets.iter().enumerate() {
        if p.seqno as usize != i {
            return Err(HailError::Pipeline(format!(
                "packet out of order: expected seqno {i}, got {}",
                p.seqno
            )));
        }
        if p.offset as usize != out.len() {
            return Err(HailError::Pipeline(format!(
                "packet {} offset {} does not match reassembly position {}",
                i,
                p.offset,
                out.len()
            )));
        }
        if p.last != (i + 1 == packets.len()) {
            return Err(HailError::Pipeline(format!(
                "packet {} has wrong last flag",
                i
            )));
        }
        out.extend_from_slice(&p.data);
    }
    if packets.is_empty() {
        return Err(HailError::Pipeline("no packets to reassemble".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn chunking_counts() {
        let data = vec![7u8; CHUNK_SIZE * 2 + 10];
        let sums = chunk_checksums(&data);
        assert_eq!(sums.len(), 3);
        assert!(verify_chunks(&data, &sums).is_ok());
    }

    #[test]
    fn verify_detects_corruption() {
        let mut data = vec![1u8; CHUNK_SIZE * 3];
        let sums = chunk_checksums(&data);
        data[CHUNK_SIZE + 5] ^= 0xFF;
        let err = verify_chunks(&data, &sums).unwrap_err();
        match err {
            HailError::ChecksumMismatch { chunk_index, .. } => assert_eq!(chunk_index, 1),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn verify_detects_count_mismatch() {
        let data = vec![1u8; CHUNK_SIZE * 2];
        let sums = chunk_checksums(&data);
        // One whole chunk missing → count mismatch, reported as Corrupt.
        let err = verify_chunks(&data[..CHUNK_SIZE], &sums).unwrap_err();
        assert!(matches!(err, HailError::Corrupt(_)));
        // Truncated last chunk → its CRC no longer matches.
        let err = verify_chunks(&data[..CHUNK_SIZE * 2 - 1], &sums).unwrap_err();
        assert!(matches!(
            err,
            HailError::ChecksumMismatch { chunk_index: 1, .. }
        ));
    }

    #[test]
    fn checksum_file_round_trip() {
        let sums = vec![1u32, 0xDEADBEEF, 42];
        let bytes = checksums_to_bytes(&sums);
        assert_eq!(checksums_from_bytes(&bytes).unwrap(), sums);
        assert!(checksums_from_bytes(&bytes[..5]).is_err());
    }

    #[test]
    fn packet_budget_fits() {
        // A full packet must respect the 64 KB budget.
        let wire = CHUNKS_PER_PACKET * (CHUNK_SIZE + 4) + PACKET_HEADER_BYTES;
        let budget = PACKET_SIZE; // bind as runtime values to compare
        assert!(wire <= budget, "wire {wire} > {budget}");
        let chunks = CHUNKS_PER_PACKET;
        assert!(chunks >= 100, "packets should carry many chunks: {chunks}");
    }

    #[test]
    fn packetize_reassemble_round_trip() {
        let block: Vec<u8> = (0..(CHUNKS_PER_PACKET * CHUNK_SIZE * 2 + 777))
            .map(|i| (i % 251) as u8)
            .collect();
        let packets = packetize(&block);
        assert_eq!(packets.len(), 3);
        assert!(packets.last().unwrap().last);
        for p in &packets {
            p.verify().unwrap();
        }
        assert_eq!(reassemble(&packets).unwrap(), block);
    }

    #[test]
    fn empty_block_yields_one_last_packet() {
        let packets = packetize(&[]);
        assert_eq!(packets.len(), 1);
        assert!(packets[0].last);
        assert_eq!(reassemble(&packets).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn reassemble_rejects_reordering() {
        let block = vec![9u8; CHUNKS_PER_PACKET * CHUNK_SIZE + 1];
        let mut packets = packetize(&block);
        packets.swap(0, 1);
        assert!(reassemble(&packets).is_err());
    }

    #[test]
    fn reassemble_rejects_missing_last_flag() {
        let block = vec![9u8; 100];
        let mut packets = packetize(&block);
        packets[0].last = false;
        assert!(reassemble(&packets).is_err());
    }

    #[test]
    fn packet_corruption_caught_by_verify() {
        let block = vec![3u8; 2048];
        let mut packets = packetize(&block);
        packets[0].data[100] ^= 1;
        assert!(packets[0].verify().is_err());
    }
}
