//! Block reorganization: computing sort permutations and rewriting a PAX
//! block in a new sort order.
//!
//! This is the in-memory work each datanode performs during upload
//! (§3.5): sort the key column, derive a *sort index* (permutation), apply
//! it to every other minipage, and re-encode. Data is only ever
//! reorganized *within* a block, never across blocks — the property that
//! keeps HAIL's failover identical to HDFS's.

use crate::block::{encode_block, PaxBlock};
use crate::column::ColumnData;
use hail_types::{HailError, Result};

/// Computes the permutation that stably sorts the given column ascending.
///
/// `perm[i]` is the input row index that lands at output position `i`.
/// Floats use total ordering; the sort is stable so ties keep upload
/// order, which makes re-uploads deterministic.
pub fn sort_permutation(column: &ColumnData) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..column.len()).collect();
    match column {
        ColumnData::Int(v) | ColumnData::Date(v) => {
            perm.sort_by_key(|&i| v[i]);
        }
        ColumnData::Long(v) => perm.sort_by_key(|&i| v[i]),
        ColumnData::Float(v) => perm.sort_by(|&a, &b| v[a].total_cmp(&v[b])),
        ColumnData::Str(v) => perm.sort_by(|&a, &b| v[a].cmp(&v[b])),
    }
    perm
}

/// Rewrites a block with its rows sorted on the given 0-based column.
///
/// Returns the re-encoded block and the permutation that was applied (the
/// clustered-index builder needs the sorted key column, which it can now
/// read from the new block directly). Bad records are carried over
/// verbatim — they have no sort key.
pub fn sort_block(block: &PaxBlock, sort_column: usize) -> Result<(PaxBlock, Vec<usize>)> {
    if sort_column >= block.schema().len() {
        return Err(HailError::UnknownAttribute(sort_column + 1));
    }
    let columns = block.decode_all_columns()?;
    let perm = sort_permutation(&columns[sort_column]);
    let sorted: Vec<ColumnData> = columns.iter().map(|c| c.permute(&perm)).collect();
    let bad = block.bad_records()?;
    let bytes = encode_block(block.schema(), &sorted, &bad, block.partition_size())?;
    Ok((PaxBlock::parse(bytes)?, perm))
}

/// Verifies that a block is sorted ascending on the given column.
/// Used in tests and by the (debug-only) upload pipeline assertions.
pub fn is_sorted_on(block: &PaxBlock, column: usize) -> Result<bool> {
    let col = block.decode_column(column)?;
    for i in 1..col.len() {
        if col.value(i - 1) > col.value(i) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::blocks_from_text;
    use hail_types::{DataType, Field, Schema, StorageConfig, Value};

    fn block() -> PaxBlock {
        let schema = Schema::new(vec![
            Field::new("name", DataType::VarChar),
            Field::new("score", DataType::Int),
            Field::new("weight", DataType::Float),
        ])
        .unwrap();
        let text = "carol|3|0.3\nalice|1|0.1\neve|5|0.5\nbob|2|0.2\ndave|4|0.4\n";
        blocks_from_text(text, &schema, &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap()
    }

    #[test]
    fn permutation_sorts() {
        let c = ColumnData::Int(vec![3, 1, 5, 2, 4]);
        assert_eq!(sort_permutation(&c), vec![1, 3, 0, 4, 2]);
    }

    #[test]
    fn permutation_is_stable() {
        let c = ColumnData::Int(vec![2, 1, 2, 1]);
        assert_eq!(sort_permutation(&c), vec![1, 3, 0, 2]);
    }

    #[test]
    fn sort_block_reorders_all_columns() {
        let b = block();
        let (sorted, perm) = sort_block(&b, 1).unwrap();
        assert_eq!(perm, vec![1, 3, 0, 4, 2]);
        assert!(is_sorted_on(&sorted, 1).unwrap());
        // Row integrity: name/score/weight stay together.
        for r in 0..sorted.row_count() {
            let score = match sorted.value(1, r).unwrap() {
                Value::Int(v) => v,
                _ => unreachable!(),
            };
            let name = sorted.value(0, r).unwrap().to_string();
            let expected = ["alice", "bob", "carol", "dave", "eve"][(score - 1) as usize];
            assert_eq!(name, expected);
            let w = sorted.value(2, r).unwrap().as_f64().unwrap();
            assert!((w - score as f64 / 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sort_on_varchar() {
        let b = block();
        let (sorted, _) = sort_block(&b, 0).unwrap();
        assert!(is_sorted_on(&sorted, 0).unwrap());
        assert_eq!(sorted.value(0, 0).unwrap(), Value::Str("alice".into()));
        assert_eq!(sorted.value(0, 4).unwrap(), Value::Str("eve".into()));
    }

    #[test]
    fn sort_on_float_total_order() {
        let b = block();
        let (sorted, _) = sort_block(&b, 2).unwrap();
        assert!(is_sorted_on(&sorted, 2).unwrap());
    }

    #[test]
    fn sort_preserves_bad_records() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int),
            Field::new("v", DataType::Int),
        ])
        .unwrap();
        let text = "3|30\nnot-a-row\n1|10\n2|20\n";
        let b = blocks_from_text(text, &schema, &StorageConfig::test_scale(1 << 20))
            .unwrap()
            .pop()
            .unwrap();
        let (sorted, _) = sort_block(&b, 0).unwrap();
        assert_eq!(sorted.bad_records().unwrap(), vec!["not-a-row".to_string()]);
        assert!(is_sorted_on(&sorted, 0).unwrap());
    }

    #[test]
    fn sort_unknown_column_errors() {
        let b = block();
        assert!(sort_block(&b, 9).is_err());
    }

    #[test]
    fn unsorted_detected() {
        let b = block();
        assert!(!is_sorted_on(&b, 1).unwrap());
    }
}
