//! The serialized PAX block format and its reader.
//!
//! A PAX block (§3.1, \[2\]) stores all rows of one HDFS block grouped by
//! column ("minipages"), preceded by *Block Metadata* (schema, row count,
//! column directory) and followed by a *bad record* section holding raw
//! lines that did not match the schema.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            u32   0x4C494148 ("HAIL")
//! version          u8
//! num_fields       u16
//! fields           num_fields × { tag u8, name (u16-len string) }
//! row_count        u32
//! partition_size   u32
//! bad_count        u32
//! column directory num_fields × { offset u32, length u32 }
//! bad directory    { offset u32, length u32 }
//! columns…         (fixed: dense values; varchar: offset list ++ values)
//! bad section      bad_count zero-terminated raw lines
//! ```
//!
//! Variable-size columns follow §3.5 *Accessing Variable-size Attributes*:
//! values are zero-terminated and only every `partition_size`-th offset is
//! stored, in front of the value data. Random access to row `r` seeks the
//! partition `r / partition_size` and scans forward in memory.

use crate::column::ColumnData;
use bytes::Bytes;
use hail_types::bytes_util::{put_str, put_u32, ByteReader};
use hail_types::{DataType, Field, HailError, Result, Row, Schema, Value};

/// Magic number at the start of every PAX block ("HAIL" in LE order).
pub const PAX_MAGIC: u32 = 0x4C49_4148;
/// Current format version.
pub const PAX_VERSION: u8 = 1;

/// Serializes columns + bad records into the PAX block format.
pub fn encode_block(
    schema: &Schema,
    columns: &[ColumnData],
    bad_records: &[String],
    partition_size: usize,
) -> Result<Bytes> {
    if columns.len() != schema.len() {
        return Err(HailError::Schema(format!(
            "{} columns for schema of {} fields",
            columns.len(),
            schema.len()
        )));
    }
    let row_count = columns.first().map_or(0, ColumnData::len);
    for (i, c) in columns.iter().enumerate() {
        if c.len() != row_count {
            return Err(HailError::Internal(format!(
                "column {i} has {} values, expected {row_count}",
                c.len()
            )));
        }
        if c.data_type() != schema.fields()[i].data_type {
            return Err(HailError::Schema(format!(
                "column {i} type {} does not match schema type {}",
                c.data_type(),
                schema.fields()[i].data_type
            )));
        }
    }
    if partition_size == 0 {
        return Err(HailError::Schema("partition size must be positive".into()));
    }

    // --- header ---
    let mut buf = Vec::new();
    put_u32(&mut buf, PAX_MAGIC);
    buf.push(PAX_VERSION);
    buf.extend_from_slice(&(schema.len() as u16).to_le_bytes());
    for f in schema.fields() {
        buf.push(f.data_type.tag());
        put_str(&mut buf, &f.name)?;
    }
    put_u32(&mut buf, row_count as u32);
    put_u32(&mut buf, partition_size as u32);
    put_u32(&mut buf, bad_records.len() as u32);

    // Column directory placeholder, patched below.
    let dir_pos = buf.len();
    for _ in 0..schema.len() + 1 {
        put_u32(&mut buf, 0);
        put_u32(&mut buf, 0);
    }

    // --- columns ---
    let mut dir: Vec<(u32, u32)> = Vec::with_capacity(schema.len() + 1);
    for col in columns {
        let start = buf.len();
        match col {
            ColumnData::Int(v) | ColumnData::Date(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Long(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_le_bytes());
                }
            }
            ColumnData::Float(v) => {
                for x in v {
                    buf.extend_from_slice(&x.to_bits().to_le_bytes());
                }
            }
            ColumnData::Str(v) => {
                // Sparse offset list: one entry per partition, relative to
                // the start of the value data.
                let n_parts = v.len().div_ceil(partition_size);
                let mut offsets = Vec::with_capacity(n_parts);
                let mut pos = 0u32;
                for (i, s) in v.iter().enumerate() {
                    if i % partition_size == 0 {
                        offsets.push(pos);
                    }
                    pos += s.len() as u32 + 1;
                }
                debug_assert_eq!(offsets.len(), n_parts);
                for off in offsets {
                    put_u32(&mut buf, off);
                }
                for s in v {
                    buf.extend_from_slice(s.as_bytes());
                    buf.push(0);
                }
            }
        }
        dir.push((start as u32, (buf.len() - start) as u32));
    }

    // --- bad section ---
    let bad_start = buf.len();
    for line in bad_records {
        buf.extend_from_slice(line.as_bytes());
        buf.push(0);
    }
    dir.push((bad_start as u32, (buf.len() - bad_start) as u32));

    // Patch directory.
    for (i, (off, len)) in dir.iter().enumerate() {
        let at = dir_pos + i * 8;
        buf[at..at + 4].copy_from_slice(&off.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&len.to_le_bytes());
    }

    Ok(Bytes::from(buf))
}

/// A parsed PAX block: header fields plus a shared handle on the raw
/// bytes. Cloning is O(1) (`Bytes` is reference-counted), which models
/// replicas cheaply in tests while the DFS layer still charges full byte
/// costs.
#[derive(Debug, Clone)]
pub struct PaxBlock {
    schema: Schema,
    row_count: usize,
    partition_size: usize,
    bad_count: usize,
    /// Per-column (offset, length), with a final entry for the bad section.
    directory: Vec<(usize, usize)>,
    bytes: Bytes,
}

impl PaxBlock {
    /// Parses the header of a serialized PAX block.
    pub fn parse(bytes: Bytes) -> Result<PaxBlock> {
        let mut r = ByteReader::new(&bytes);
        let magic = r.u32()?;
        if magic != PAX_MAGIC {
            return Err(HailError::Corrupt(format!(
                "bad magic {magic:#010x}, expected {PAX_MAGIC:#010x}"
            )));
        }
        let version = r.u8()?;
        if version != PAX_VERSION {
            return Err(HailError::Corrupt(format!("unsupported version {version}")));
        }
        let n_fields = u16::from_le_bytes([r.u8()?, r.u8()?]) as usize;
        let mut fields = Vec::with_capacity(n_fields);
        for _ in 0..n_fields {
            let tag = r.u8()?;
            let name = r.str()?;
            fields.push(Field::new(name, DataType::from_tag(tag)?));
        }
        let schema = Schema::new(fields)?;
        let row_count = r.u32()? as usize;
        let partition_size = r.u32()? as usize;
        let bad_count = r.u32()? as usize;
        if partition_size == 0 {
            return Err(HailError::Corrupt("zero partition size".into()));
        }
        let mut directory = Vec::with_capacity(n_fields + 1);
        for _ in 0..n_fields + 1 {
            let off = r.u32()? as usize;
            let len = r.u32()? as usize;
            if off + len > bytes.len() {
                return Err(HailError::Corrupt(format!(
                    "directory entry ({off}, {len}) beyond block of {} bytes",
                    bytes.len()
                )));
            }
            directory.push((off, len));
        }
        Ok(PaxBlock {
            schema,
            row_count,
            partition_size,
            bad_count,
            directory,
            bytes,
        })
    }

    /// The block's schema (from Block Metadata).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of good rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of bad records in the bad section.
    pub fn bad_count(&self) -> usize {
        self.bad_count
    }

    /// Values per index partition.
    pub fn partition_size(&self) -> usize {
        self.partition_size
    }

    /// Total serialized size in bytes.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw serialized bytes.
    pub fn bytes(&self) -> &Bytes {
        &self.bytes
    }

    /// Number of index partitions covering the rows.
    pub fn partition_count(&self) -> usize {
        self.row_count.div_ceil(self.partition_size)
    }

    fn column_slice(&self, col: usize) -> Result<&[u8]> {
        let (off, len) = *self
            .directory
            .get(col)
            .ok_or(HailError::UnknownAttribute(col + 1))?;
        Ok(&self.bytes[off..off + len])
    }

    /// Byte length of one column's region (offset list included for
    /// varchar columns). Used by the cost model.
    pub fn column_byte_len(&self, col: usize) -> Result<usize> {
        Ok(self.column_slice(col)?.len())
    }

    /// Reads a single value. Fixed-size attributes are read by direct
    /// offset arithmetic; variable-size attributes locate the partition
    /// via the sparse offset list and scan forward (§3.5).
    pub fn value(&self, col: usize, row: usize) -> Result<Value> {
        if row >= self.row_count {
            return Err(HailError::Corrupt(format!(
                "row {row} out of range ({} rows)",
                self.row_count
            )));
        }
        let dtype = self.schema.field(col)?.data_type;
        let slice = self.column_slice(col)?;
        match dtype {
            DataType::Int | DataType::Date => {
                let off = row * 4;
                let v = i32::from_le_bytes(slice[off..off + 4].try_into().unwrap());
                Ok(if dtype == DataType::Int {
                    Value::Int(v)
                } else {
                    Value::Date(v)
                })
            }
            DataType::Long => {
                let off = row * 8;
                Ok(Value::Long(i64::from_le_bytes(
                    slice[off..off + 8].try_into().unwrap(),
                )))
            }
            DataType::Float => {
                let off = row * 8;
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                    slice[off..off + 8].try_into().unwrap(),
                ))))
            }
            DataType::VarChar => {
                let bytes = self.varlen_bytes(col, row)?;
                String::from_utf8(bytes.to_vec())
                    .map(Value::Str)
                    .map_err(|_| HailError::Corrupt("invalid UTF-8 in varchar value".into()))
            }
        }
    }

    /// Raw bytes of a variable-size value: partition seek + in-partition
    /// scan, exactly the paper's `rowID / 1024` walk.
    fn varlen_bytes(&self, col: usize, row: usize) -> Result<&[u8]> {
        let slice = self.column_slice(col)?;
        let n_parts = self.partition_count();
        let offsets_len = n_parts * 4;
        let data = &slice[offsets_len..];
        let partition = row / self.partition_size;
        let start = u32::from_le_bytes(slice[partition * 4..partition * 4 + 4].try_into().unwrap())
            as usize;
        let mut r = ByteReader::new(data);
        r.seek(start)?;
        let in_part = row % self.partition_size;
        for _ in 0..in_part {
            r.cstr()?;
        }
        r.cstr()
    }

    /// Decodes a whole column into its typed in-memory form.
    pub fn decode_column(&self, col: usize) -> Result<ColumnData> {
        let dtype = self.schema.field(col)?.data_type;
        let slice = self.column_slice(col)?;
        let n = self.row_count;
        Ok(match dtype {
            DataType::Int | DataType::Date => {
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(i32::from_le_bytes(
                        slice[i * 4..i * 4 + 4].try_into().unwrap(),
                    ));
                }
                if dtype == DataType::Int {
                    ColumnData::Int(v)
                } else {
                    ColumnData::Date(v)
                }
            }
            DataType::Long => {
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(i64::from_le_bytes(
                        slice[i * 8..i * 8 + 8].try_into().unwrap(),
                    ));
                }
                ColumnData::Long(v)
            }
            DataType::Float => {
                let mut v = Vec::with_capacity(n);
                for i in 0..n {
                    v.push(f64::from_bits(u64::from_le_bytes(
                        slice[i * 8..i * 8 + 8].try_into().unwrap(),
                    )));
                }
                ColumnData::Float(v)
            }
            DataType::VarChar => {
                let offsets_len = self.partition_count() * 4;
                let data = &slice[offsets_len..];
                let mut r = ByteReader::new(data);
                let mut v = Vec::with_capacity(n);
                for _ in 0..n {
                    let bytes = r.cstr()?;
                    v.push(String::from_utf8(bytes.to_vec()).map_err(|_| {
                        HailError::Corrupt("invalid UTF-8 in varchar column".into())
                    })?);
                }
                ColumnData::Str(v)
            }
        })
    }

    /// Decodes every column.
    pub fn decode_all_columns(&self) -> Result<Vec<ColumnData>> {
        (0..self.schema.len())
            .map(|c| self.decode_column(c))
            .collect()
    }

    /// Reconstructs one row, projected to the given 0-based column
    /// indexes (tuple reconstruction, PAX → row layout).
    pub fn reconstruct(&self, row: usize, projection: &[usize]) -> Result<Row> {
        let mut values = Vec::with_capacity(projection.len());
        for &col in projection {
            values.push(self.value(col, row)?);
        }
        Ok(Row::new(values))
    }

    /// Reconstructs one row with all attributes.
    pub fn reconstruct_full(&self, row: usize) -> Result<Row> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        self.reconstruct(row, &all)
    }

    /// The raw bad-record lines stored in the bad section.
    pub fn bad_records(&self) -> Result<Vec<String>> {
        let (off, len) = *self.directory.last().unwrap();
        let slice = &self.bytes[off..off + len];
        let mut r = ByteReader::new(slice);
        let mut out = Vec::with_capacity(self.bad_count);
        for _ in 0..self.bad_count {
            let bytes = r.cstr()?;
            out.push(
                String::from_utf8(bytes.to_vec())
                    .map_err(|_| HailError::Corrupt("invalid UTF-8 in bad record".into()))?,
            );
        }
        Ok(out)
    }

    /// Bytes that must be read from "disk" to scan the rows of the given
    /// partition range for the given columns — what an index scan touches.
    ///
    /// For fixed columns this is an exact window; for varchar columns the
    /// window is derived from the sparse offset list.
    pub fn partition_scan_bytes(
        &self,
        columns: &[usize],
        first_partition: usize,
        last_partition: usize,
    ) -> Result<usize> {
        if self.row_count == 0 || first_partition > last_partition {
            return Ok(0);
        }
        let mut total = 0usize;
        for &col in columns {
            let dtype = self.schema.field(col)?.data_type;
            let slice = self.column_slice(col)?;
            match dtype.fixed_width() {
                Some(w) => {
                    let start_row = first_partition * self.partition_size;
                    let end_row = ((last_partition + 1) * self.partition_size).min(self.row_count);
                    total += end_row.saturating_sub(start_row) * w;
                }
                None => {
                    let n_parts = self.partition_count();
                    let offsets_len = n_parts * 4;
                    let data_len = slice.len() - offsets_len;
                    let start = u32::from_le_bytes(
                        slice[first_partition * 4..first_partition * 4 + 4]
                            .try_into()
                            .unwrap(),
                    ) as usize;
                    let end = if last_partition + 1 < n_parts {
                        u32::from_le_bytes(
                            slice[(last_partition + 1) * 4..(last_partition + 1) * 4 + 4]
                                .try_into()
                                .unwrap(),
                        ) as usize
                    } else {
                        data_len
                    };
                    total += end.saturating_sub(start);
                }
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::parse_line_strict;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ip", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("revenue", DataType::Float),
            Field::new("duration", DataType::Int),
        ])
        .unwrap()
    }

    fn build(rows: &[&str], bad: &[&str], partition_size: usize) -> PaxBlock {
        let s = schema();
        let mut cols: Vec<ColumnData> = s
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.data_type))
            .collect();
        for line in rows {
            let row = parse_line_strict(line, &s, '|').unwrap();
            for (c, v) in cols.iter_mut().zip(row.values()) {
                c.push(v).unwrap();
            }
        }
        let bad: Vec<String> = bad.iter().map(|s| s.to_string()).collect();
        let bytes = encode_block(&s, &cols, &bad, partition_size).unwrap();
        PaxBlock::parse(bytes).unwrap()
    }

    #[test]
    fn round_trip_values() {
        let b = build(
            &[
                "1.2.3.4|1999-01-05|1.5|10",
                "5.6.7.8|2000-06-30|2.5|20",
                "9.9.9.9|2011-12-31|3.5|30",
            ],
            &[],
            2,
        );
        assert_eq!(b.row_count(), 3);
        assert_eq!(b.value(0, 0).unwrap(), Value::Str("1.2.3.4".into()));
        assert_eq!(b.value(0, 2).unwrap(), Value::Str("9.9.9.9".into()));
        assert_eq!(b.value(2, 1).unwrap(), Value::Float(2.5));
        assert_eq!(b.value(3, 2).unwrap(), Value::Int(30));
        assert_eq!(b.value(1, 0).unwrap().to_string(), "1999-01-05".to_string());
    }

    #[test]
    fn varlen_partition_walk() {
        // Partition size 2 with 5 rows → 3 partitions; access every row.
        let rows: Vec<String> = (0..5)
            .map(|i| format!("host-{i}-{}|1999-01-01|1.0|{i}", "x".repeat(i)))
            .collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let b = build(&refs, &[], 2);
        for (i, line) in rows.iter().enumerate() {
            let expected = line.split('|').next().unwrap();
            assert_eq!(b.value(0, i).unwrap(), Value::Str(expected.into()));
        }
    }

    #[test]
    fn reconstruct_projection() {
        let b = build(&["a|1999-01-01|1.0|7", "b|1999-01-02|2.0|8"], &[], 1024);
        let r = b.reconstruct(1, &[3, 0]).unwrap();
        assert_eq!(r.values(), &[Value::Int(8), Value::Str("b".into())]);
        let full = b.reconstruct_full(0).unwrap();
        assert_eq!(full.len(), 4);
    }

    #[test]
    fn bad_records_round_trip() {
        let b = build(
            &["a|1999-01-01|1.0|7"],
            &["totally|broken", "another bad line"],
            1024,
        );
        assert_eq!(b.bad_count(), 2);
        assert_eq!(
            b.bad_records().unwrap(),
            vec!["totally|broken".to_string(), "another bad line".to_string()]
        );
    }

    #[test]
    fn decode_columns_round_trip() {
        let b = build(
            &[
                "a|1999-01-01|1.0|7",
                "bb|1999-01-02|2.0|8",
                "ccc|1999-01-03|3.0|9",
            ],
            &[],
            2,
        );
        let cols = b.decode_all_columns().unwrap();
        assert_eq!(cols[0].value(2), Value::Str("ccc".into()));
        assert_eq!(cols[3].value(0), Value::Int(7));
    }

    #[test]
    fn empty_block() {
        let b = build(&[], &[], 1024);
        assert_eq!(b.row_count(), 0);
        assert_eq!(b.partition_count(), 0);
        assert!(b.value(0, 0).is_err());
        assert_eq!(b.bad_records().unwrap(), Vec::<String>::new());
    }

    #[test]
    fn rejects_bad_magic() {
        let b = build(&["a|1999-01-01|1.0|7"], &[], 1024);
        let mut raw = b.bytes().to_vec();
        raw[0] ^= 0xFF;
        assert!(PaxBlock::parse(Bytes::from(raw)).is_err());
    }

    #[test]
    fn rejects_truncated() {
        let b = build(&["a|1999-01-01|1.0|7"], &[], 1024);
        let raw = b.bytes().to_vec();
        let truncated = Bytes::from(raw[..raw.len() / 2].to_vec());
        // Either header parse fails or a directory bound check fails.
        assert!(PaxBlock::parse(truncated).is_err());
    }

    #[test]
    fn scan_bytes_fixed_and_varlen() {
        let rows: Vec<String> = (0..10)
            .map(|i| format!("v{i}|1999-01-01|1.0|{i}"))
            .collect();
        let refs: Vec<&str> = rows.iter().map(String::as_str).collect();
        let b = build(&refs, &[], 4); // 3 partitions: rows 0-3, 4-7, 8-9
                                      // Fixed col 3 (Int): partition 1 covers rows 4..8 → 16 bytes.
        assert_eq!(b.partition_scan_bytes(&[3], 1, 1).unwrap(), 16);
        // Last partition has 2 rows → 8 bytes.
        assert_eq!(b.partition_scan_bytes(&[3], 2, 2).unwrap(), 8);
        // Whole varchar column partitions 0..=2 = all value bytes.
        let all = b.partition_scan_bytes(&[0], 0, 2).unwrap();
        let expected: usize = rows
            .iter()
            .map(|r| r.split('|').next().unwrap().len() + 1)
            .sum();
        assert_eq!(all, expected);
        // Empty range.
        assert_eq!(b.partition_scan_bytes(&[0], 2, 1).unwrap(), 0);
    }

    #[test]
    fn encode_rejects_ragged_columns() {
        let s = schema();
        let mut cols: Vec<ColumnData> = s
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.data_type))
            .collect();
        cols[0].push(&Value::Str("a".into())).unwrap();
        let err = encode_block(&s, &cols, &[], 1024);
        assert!(err.is_err());
    }
}
