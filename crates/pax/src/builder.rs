//! Content-aware block building.
//!
//! The HAIL client cuts the uploaded file into blocks at *row boundaries*
//! (§3.1 step 1): it scans for end-of-line symbols and never splits a row
//! across two blocks — in contrast to standard HDFS, which cuts after a
//! constant number of bytes. Each block's rows are parsed against the
//! user schema; rows that fail to parse become bad records inside the same
//! block.

use crate::block::{encode_block, PaxBlock};
use crate::column::ColumnData;
use hail_types::{parse_line, ParsedRecord, Result, Row, Schema, StorageConfig};

/// Accumulates parsed rows until a block is full, then serializes a
/// [`PaxBlock`].
#[derive(Debug)]
pub struct PaxBlockBuilder {
    schema: Schema,
    config: StorageConfig,
    columns: Vec<ColumnData>,
    bad: Vec<String>,
    row_count: usize,
    /// Bytes of *original text* consumed so far — the fullness criterion,
    /// so HAIL's logical blocks cover the same data range as HDFS blocks
    /// would.
    text_bytes: usize,
}

impl PaxBlockBuilder {
    pub fn new(schema: Schema, config: StorageConfig) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::new(f.data_type))
            .collect();
        PaxBlockBuilder {
            schema,
            config,
            columns,
            bad: Vec::new(),
            row_count: 0,
            text_bytes: 0,
        }
    }

    /// Number of good rows currently buffered.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of bad records currently buffered.
    pub fn bad_count(&self) -> usize {
        self.bad.len()
    }

    /// True once the accumulated original-text volume reaches the
    /// configured block size.
    pub fn is_full(&self) -> bool {
        self.text_bytes >= self.config.block_size
    }

    /// True if nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.row_count == 0 && self.bad.is_empty()
    }

    /// Parses one text line (without trailing newline) and buffers it as a
    /// good row or bad record.
    pub fn push_line(&mut self, line: &str) -> Result<()> {
        self.text_bytes += line.len() + 1;
        match parse_line(line, &self.schema, self.config.delimiter) {
            ParsedRecord::Good(row) => self.push_parsed(row),
            ParsedRecord::Bad { line, .. } => {
                self.bad.push(line);
                Ok(())
            }
        }
    }

    /// Buffers an already-parsed row (used by generators that skip the
    /// text round trip; text size is estimated from the row).
    pub fn push_row(&mut self, row: Row) -> Result<()> {
        self.text_bytes += row.text_len();
        self.push_parsed(row)
    }

    fn push_parsed(&mut self, row: Row) -> Result<()> {
        for (col, value) in self.columns.iter_mut().zip(row.values()) {
            col.push(value)?;
        }
        self.row_count += 1;
        Ok(())
    }

    /// Serializes the buffered rows into a PAX block and resets the
    /// builder for the next block.
    pub fn finish(&mut self) -> Result<PaxBlock> {
        let columns = std::mem::replace(
            &mut self.columns,
            self.schema
                .fields()
                .iter()
                .map(|f| ColumnData::new(f.data_type))
                .collect(),
        );
        let bad = std::mem::take(&mut self.bad);
        self.row_count = 0;
        self.text_bytes = 0;
        let bytes = encode_block(
            &self.schema,
            &columns,
            &bad,
            self.config.index_partition_size,
        )?;
        PaxBlock::parse(bytes)
    }
}

/// Splits a text corpus into content-aware PAX blocks.
///
/// Convenience wrapper used by tests and examples; the real upload
/// pipeline drives [`PaxBlockBuilder`] incrementally.
pub fn blocks_from_text(
    text: &str,
    schema: &Schema,
    config: &StorageConfig,
) -> Result<Vec<PaxBlock>> {
    let mut builder = PaxBlockBuilder::new(schema.clone(), config.clone());
    let mut out = Vec::new();
    for line in text.lines() {
        builder.push_line(line)?;
        if builder.is_full() {
            out.push(builder.finish()?);
        }
    }
    if !builder.is_empty() {
        out.push(builder.finish()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hail_types::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("word", DataType::VarChar),
            Field::new("count", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn builds_single_block() {
        let cfg = StorageConfig::test_scale(1 << 20);
        let text = "alpha|1\nbeta|2\ngamma|3\n";
        let blocks = blocks_from_text(text, &schema(), &cfg).unwrap();
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.row_count(), 3);
        assert_eq!(b.value(0, 1).unwrap(), Value::Str("beta".into()));
        assert_eq!(b.value(1, 2).unwrap(), Value::Int(3));
    }

    #[test]
    fn cuts_blocks_at_row_boundaries() {
        // Block size of 16 bytes forces a cut every ~2 small rows, but
        // never mid-row.
        let cfg = StorageConfig::test_scale(16);
        let text: String = (0..10).map(|i| format!("w{i}|{i}\n")).collect();
        let blocks = blocks_from_text(&text, &schema(), &cfg).unwrap();
        assert!(blocks.len() > 1);
        let total: usize = blocks.iter().map(|b| b.row_count()).sum();
        assert_eq!(total, 10);
        // Every row is intact in some block.
        let mut words = Vec::new();
        for b in &blocks {
            for r in 0..b.row_count() {
                words.push(b.value(0, r).unwrap().to_string());
            }
        }
        words.sort();
        let mut expected: Vec<String> = (0..10).map(|i| format!("w{i}")).collect();
        expected.sort();
        assert_eq!(words, expected);
    }

    #[test]
    fn bad_records_go_to_bad_section() {
        let cfg = StorageConfig::test_scale(1 << 20);
        let text = "good|1\nbad-line-no-delim\nanother|x\nfine|2\n";
        let blocks = blocks_from_text(text, &schema(), &cfg).unwrap();
        assert_eq!(blocks.len(), 1);
        let b = &blocks[0];
        assert_eq!(b.row_count(), 2);
        assert_eq!(b.bad_count(), 2);
        let bad = b.bad_records().unwrap();
        assert!(bad.contains(&"bad-line-no-delim".to_string()));
        assert!(bad.contains(&"another|x".to_string()));
    }

    #[test]
    fn push_row_direct() {
        let cfg = StorageConfig::test_scale(1 << 20);
        let mut builder = PaxBlockBuilder::new(schema(), cfg);
        builder
            .push_row(Row::new(vec![Value::Str("x".into()), Value::Int(1)]))
            .unwrap();
        assert_eq!(builder.row_count(), 1);
        let b = builder.finish().unwrap();
        assert_eq!(b.row_count(), 1);
        assert!(builder.is_empty());
    }

    #[test]
    fn finish_resets_builder() {
        let cfg = StorageConfig::test_scale(8);
        let mut builder = PaxBlockBuilder::new(schema(), cfg);
        builder.push_line("abcdefgh|1").unwrap();
        assert!(builder.is_full());
        let b1 = builder.finish().unwrap();
        assert_eq!(b1.row_count(), 1);
        assert!(!builder.is_full());
        builder.push_line("x|2").unwrap();
        let b2 = builder.finish().unwrap();
        assert_eq!(b2.row_count(), 1);
        assert_eq!(b2.value(0, 0).unwrap(), Value::Str("x".into()));
    }
}
