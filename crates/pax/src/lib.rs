//! # hail-pax
//!
//! The PAX storage layout for HAIL blocks plus the HDFS chunk/packet
//! checksum machinery.
//!
//! - [`block`] — the serialized PAX block format and its reader
//! - [`builder`] — content-aware block building (never split a row)
//! - [`column`](mod@column) — decoded, typed column vectors used for sorting
//! - [`reorg`] — sort permutations and per-replica block rewriting
//! - [`checksum`] — CRC-32 chunks, packets, and checksum files

#![forbid(unsafe_code)]

pub mod block;
pub mod builder;
pub mod checksum;
pub mod column;
pub mod reorg;

pub use block::{encode_block, PaxBlock, PAX_MAGIC, PAX_VERSION};
pub use builder::{blocks_from_text, PaxBlockBuilder};
pub use checksum::{
    checksums_from_bytes, checksums_to_bytes, chunk_checksums, crc32, packetize, reassemble,
    verify_chunks, Packet, CHUNKS_PER_PACKET,
};
pub use column::ColumnData;
pub use reorg::{is_sorted_on, sort_block, sort_permutation};
