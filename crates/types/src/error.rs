//! Error types shared by every crate in the HAIL workspace.

use std::fmt;

/// The unified error type for HAIL operations.
///
/// The variants mirror the failure domains of the system: schema/parse
/// problems at upload time, storage-layer failures (checksums, missing
/// blocks, dead datanodes), and query-pipeline misuse (bad annotations,
/// missing indexes when one was required).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HailError {
    /// A row of input text did not match the user-declared schema.
    ///
    /// Bad records are normally routed to the bad-record section of a PAX
    /// block rather than surfaced as errors; this variant is used when a
    /// caller explicitly requested strict parsing.
    BadRecord { line: String, reason: String },
    /// A schema was declared or used inconsistently (duplicate field name,
    /// attribute position out of range, type mismatch).
    Schema(String),
    /// Block-format corruption: bad magic, truncated header, impossible
    /// offsets.
    Corrupt(String),
    /// A CRC mismatch was detected while verifying a chunk.
    ChecksumMismatch {
        chunk_index: usize,
        expected: u32,
        actual: u32,
    },
    /// A packet-level protocol violation in the upload pipeline
    /// (out-of-order ACK, wrong sequence number, duplicate last packet).
    Pipeline(String),
    /// The namenode has no record of the requested block.
    UnknownBlock(u64),
    /// The requested datanode does not exist or has been declared dead.
    DeadDatanode(usize),
    /// Not enough live datanodes to satisfy the requested replication.
    InsufficientReplication { wanted: usize, alive: usize },
    /// A `@HailQuery` annotation could not be parsed.
    Annotation(String),
    /// A query referenced an attribute that does not exist in the schema.
    UnknownAttribute(usize),
    /// A MapReduce job configuration problem.
    Job(String),
    /// An internal invariant was violated. Indicates a bug.
    Internal(String),
}

impl fmt::Display for HailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HailError::BadRecord { line, reason } => {
                write!(f, "bad record ({reason}): {line:?}")
            }
            HailError::Schema(msg) => write!(f, "schema error: {msg}"),
            HailError::Corrupt(msg) => write!(f, "corrupt block: {msg}"),
            HailError::ChecksumMismatch {
                chunk_index,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch on chunk {chunk_index}: expected {expected:#010x}, got {actual:#010x}"
            ),
            HailError::Pipeline(msg) => write!(f, "upload pipeline error: {msg}"),
            HailError::UnknownBlock(id) => write!(f, "unknown block {id}"),
            HailError::DeadDatanode(id) => write!(f, "datanode DN{id} is dead"),
            HailError::InsufficientReplication { wanted, alive } => write!(
                f,
                "cannot place {wanted} replicas: only {alive} datanodes alive"
            ),
            HailError::Annotation(msg) => write!(f, "invalid HailQuery annotation: {msg}"),
            HailError::UnknownAttribute(pos) => {
                write!(f, "attribute @{pos} does not exist in the schema")
            }
            HailError::Job(msg) => write!(f, "job error: {msg}"),
            HailError::Internal(msg) => write!(f, "internal invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for HailError {}

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, HailError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = HailError::ChecksumMismatch {
            chunk_index: 7,
            expected: 0xDEADBEEF,
            actual: 0x12345678,
        };
        let s = e.to_string();
        assert!(s.contains("chunk 7"));
        assert!(s.contains("0xdeadbeef"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(HailError::UnknownBlock(3), HailError::UnknownBlock(3));
        assert_ne!(HailError::UnknownBlock(3), HailError::UnknownBlock(4));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(HailError::Schema("dup".into()));
        assert!(e.to_string().contains("dup"));
    }
}
