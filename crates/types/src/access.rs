//! The cross-layer vocabulary of physical access paths.
//!
//! Every way the system can read a block replica at query time is named
//! here, so that the planner (`hail-exec`), the MapReduce engine's task
//! statistics (`hail-mr`), and experiment reports all speak the same
//! language without depending on the execution layer.

use std::fmt;

/// How a block replica is read at query time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessPathKind {
    /// Stream the whole replica and filter row by row (text, PAX, or
    /// Hadoop++ row layout).
    FullScan,
    /// HAIL's sparse clustered index: resolve qualifying partitions in
    /// memory, read only those (§4.3).
    ClusteredIndexScan,
    /// Hadoop++'s dense trojan index over the block header (§5).
    TrojanIndexScan,
    /// Sidecar bitmap index over a low-cardinality column (§3.5).
    BitmapScan,
    /// Sidecar inverted list over the block's bad-record section (§3.5).
    InvertedListScan,
}

impl AccessPathKind {
    /// All kinds, in display order.
    pub const ALL: [AccessPathKind; 5] = [
        AccessPathKind::FullScan,
        AccessPathKind::ClusteredIndexScan,
        AccessPathKind::TrojanIndexScan,
        AccessPathKind::BitmapScan,
        AccessPathKind::InvertedListScan,
    ];

    /// True for paths that avoid streaming the whole replica.
    pub fn is_index_scan(self) -> bool {
        !matches!(self, AccessPathKind::FullScan)
    }
}

impl fmt::Display for AccessPathKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessPathKind::FullScan => "full-scan",
            AccessPathKind::ClusteredIndexScan => "clustered-index-scan",
            AccessPathKind::TrojanIndexScan => "trojan-index-scan",
            AccessPathKind::BitmapScan => "bitmap-scan",
            AccessPathKind::InvertedListScan => "inverted-list-scan",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(AccessPathKind::FullScan.to_string(), "full-scan");
        assert_eq!(
            AccessPathKind::ClusteredIndexScan.to_string(),
            "clustered-index-scan"
        );
    }

    #[test]
    fn index_scan_classification() {
        assert!(!AccessPathKind::FullScan.is_index_scan());
        for k in AccessPathKind::ALL.into_iter().skip(1) {
            assert!(k.is_index_scan(), "{k}");
        }
    }
}
