//! Little-endian binary codecs used by the PAX layout and index formats.
//!
//! Everything in a HAIL block is little-endian. These helpers are written
//! against `&[u8]`/`Vec<u8>` so callers can work with either owned buffers
//! or borrowed slices of a datanode "disk".

use crate::error::{HailError, Result};

/// Appends a `u32` in little-endian order.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i32` in little-endian order.
#[inline]
pub fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` in little-endian order.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` in little-endian order.
#[inline]
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern.
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string (u16 length).
pub fn put_str(buf: &mut Vec<u8>, s: &str) -> Result<()> {
    let len: u16 = s
        .len()
        .try_into()
        .map_err(|_| HailError::Schema(format!("string too long to encode: {} bytes", s.len())))?;
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
    Ok(())
}

/// A bounds-checked little-endian reader over a byte slice.
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Moves the cursor to an absolute offset.
    pub fn seek(&mut self, pos: usize) -> Result<()> {
        if pos > self.buf.len() {
            return Err(HailError::Corrupt(format!(
                "seek to {pos} beyond buffer of {} bytes",
                self.buf.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(HailError::Corrupt(format!(
                "truncated read: wanted {n} bytes at offset {}, only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a length-prefixed UTF-8 string written by [`put_str`].
    pub fn str(&mut self) -> Result<String> {
        let len = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| HailError::Corrupt("invalid UTF-8 in encoded string".into()))
    }

    /// Borrows `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads a zero-terminated byte sequence starting at the cursor,
    /// returning the content without the terminator.
    pub fn cstr(&mut self) -> Result<&'a [u8]> {
        let rest = &self.buf[self.pos..];
        let nul = rest
            .iter()
            .position(|&b| b == 0)
            .ok_or_else(|| HailError::Corrupt("unterminated zero-terminated value".into()))?;
        let out = &rest[..nul];
        self.pos += nul + 1;
        Ok(out)
    }
}

/// Reads the i-th fixed-width little-endian `u32` from a slice viewed as a
/// dense array. Used for index-array and offset-list access.
#[inline]
pub fn u32_at(buf: &[u8], index: usize) -> Result<u32> {
    let off = index * 4;
    let bytes: [u8; 4] = buf
        .get(off..off + 4)
        .ok_or_else(|| HailError::Corrupt(format!("u32 index {index} out of range")))?
        .try_into()
        .unwrap();
    Ok(u32::from_le_bytes(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_i32(&mut buf, -9);
        put_u64(&mut buf, u64::MAX);
        put_i64(&mut buf, i64::MIN);
        put_f64(&mut buf, 2.5);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.i32().unwrap(), -9);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.i64().unwrap(), i64::MIN);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn round_trip_string() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hail").unwrap();
        put_str(&mut buf, "").unwrap();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str().unwrap(), "hail");
        assert_eq!(r.str().unwrap(), "");
    }

    #[test]
    fn truncated_read_errors() {
        let buf = [1u8, 2, 3];
        let mut r = ByteReader::new(&buf);
        assert!(r.u32().is_err());
        // Cursor must not advance on failure past the end.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn cstr_reads_until_nul() {
        let buf = b"abc\0def\0";
        let mut r = ByteReader::new(buf);
        assert_eq!(r.cstr().unwrap(), b"abc");
        assert_eq!(r.cstr().unwrap(), b"def");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn cstr_unterminated_errors() {
        let buf = b"abc";
        let mut r = ByteReader::new(buf);
        assert!(r.cstr().is_err());
    }

    #[test]
    fn seek_bounds() {
        let buf = [0u8; 8];
        let mut r = ByteReader::new(&buf);
        assert!(r.seek(8).is_ok());
        assert!(r.seek(9).is_err());
    }

    #[test]
    fn u32_at_indexing() {
        let mut buf = Vec::new();
        for v in [10u32, 20, 30] {
            put_u32(&mut buf, v);
        }
        assert_eq!(u32_at(&buf, 0).unwrap(), 10);
        assert_eq!(u32_at(&buf, 2).unwrap(), 30);
        assert!(u32_at(&buf, 3).is_err());
    }
}
