//! Relational schemas for HAIL blocks.
//!
//! The paper addresses attributes by 1-based position (`@1`, `@3`) in the
//! `HailQuery` annotation language; [`Schema`] keeps that convention in its
//! lookup helpers while storing fields in a plain 0-based vector.

use crate::error::{HailError, Result};
use std::fmt;
use std::sync::Arc;

/// The data types supported by the HAIL binary (PAX) representation.
///
/// Fixed-size types are stored in dense minipages; `VarChar` values are
/// stored as zero-terminated byte sequences with a sparse offset list
/// (see `hail-pax`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit signed integer.
    Int,
    /// 64-bit signed integer.
    Long,
    /// 64-bit IEEE float. Ordered via `total_cmp` so blocks can be sorted
    /// on float keys deterministically.
    Float,
    /// Calendar date, stored as days since 1970-01-01 (32-bit).
    Date,
    /// Variable-length string (zero-terminated on disk).
    VarChar,
}

impl DataType {
    /// Width in bytes of the binary encoding, or `None` for variable-size
    /// types.
    pub fn fixed_width(self) -> Option<usize> {
        match self {
            DataType::Int | DataType::Date => Some(4),
            DataType::Long | DataType::Float => Some(8),
            DataType::VarChar => None,
        }
    }

    /// True if values of this type have a fixed binary width.
    pub fn is_fixed(self) -> bool {
        self.fixed_width().is_some()
    }

    /// Stable single-byte tag used in block headers.
    pub fn tag(self) -> u8 {
        match self {
            DataType::Int => 0,
            DataType::Long => 1,
            DataType::Float => 2,
            DataType::Date => 3,
            DataType::VarChar => 4,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => DataType::Int,
            1 => DataType::Long,
            2 => DataType::Float,
            3 => DataType::Date,
            4 => DataType::VarChar,
            other => return Err(HailError::Corrupt(format!("unknown type tag {other}"))),
        })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Long => "LONG",
            DataType::Float => "FLOAT",
            DataType::Date => "DATE",
            DataType::VarChar => "VARCHAR",
        };
        f.write_str(s)
    }
}

/// A named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    pub name: String,
    pub data_type: DataType,
}

impl Field {
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

/// An ordered collection of fields describing the rows of a dataset.
///
/// Schemas are cheap to clone (`Arc` inside) because every block, split and
/// record reader carries one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Builds a schema, validating that field names are unique and
    /// non-empty.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        if fields.is_empty() {
            return Err(HailError::Schema(
                "schema must have at least one field".into(),
            ));
        }
        for (i, f) in fields.iter().enumerate() {
            if f.name.is_empty() {
                return Err(HailError::Schema(format!("field {i} has an empty name")));
            }
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(HailError::Schema(format!(
                    "duplicate field name {:?}",
                    f.name
                )));
            }
        }
        Ok(Schema {
            fields: Arc::new(fields),
        })
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no attributes (never constructible via
    /// [`Schema::new`], but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// All fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Field at 0-based index.
    pub fn field(&self, idx: usize) -> Result<&Field> {
        self.fields
            .get(idx)
            .ok_or(HailError::UnknownAttribute(idx + 1))
    }

    /// Field addressed with the paper's 1-based `@pos` convention.
    pub fn field_at_position(&self, pos: usize) -> Result<&Field> {
        if pos == 0 {
            return Err(HailError::UnknownAttribute(0));
        }
        self.field(pos - 1)
    }

    /// Converts a 1-based attribute position to a 0-based column index,
    /// validating range.
    pub fn position_to_index(&self, pos: usize) -> Result<usize> {
        if pos == 0 || pos > self.len() {
            return Err(HailError::UnknownAttribute(pos));
        }
        Ok(pos - 1)
    }

    /// 0-based index of the field with the given name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Sum of the fixed widths of all fixed-size attributes, in bytes.
    /// Used by the cost model to estimate binary row size.
    pub fn fixed_row_bytes(&self) -> usize {
        self.fields
            .iter()
            .filter_map(|f| f.data_type.fixed_width())
            .sum()
    }

    /// True if every attribute is fixed-size (e.g. the Synthetic dataset).
    pub fn all_fixed(&self) -> bool {
        self.fields.iter().all(|f| f.data_type.is_fixed())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("sourceIP", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("adRevenue", DataType::Float),
            Field::new("duration", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_empty_schema() {
        assert!(matches!(Schema::new(vec![]), Err(HailError::Schema(_))));
    }

    #[test]
    fn rejects_duplicate_names() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("a", DataType::Long),
        ]);
        assert!(matches!(r, Err(HailError::Schema(_))));
    }

    #[test]
    fn rejects_empty_field_name() {
        let r = Schema::new(vec![Field::new("", DataType::Int)]);
        assert!(matches!(r, Err(HailError::Schema(_))));
    }

    #[test]
    fn one_based_positions() {
        let s = sample();
        assert_eq!(s.field_at_position(1).unwrap().name, "sourceIP");
        assert_eq!(s.field_at_position(4).unwrap().name, "duration");
        assert!(s.field_at_position(0).is_err());
        assert!(s.field_at_position(5).is_err());
        assert_eq!(s.position_to_index(2).unwrap(), 1);
    }

    #[test]
    fn index_of_by_name() {
        let s = sample();
        assert_eq!(s.index_of("adRevenue"), Some(2));
        assert_eq!(s.index_of("nope"), None);
    }

    #[test]
    fn fixed_row_bytes_sums_fixed_types() {
        let s = sample();
        // Date(4) + Float(8) + Int(4) = 16; VarChar excluded.
        assert_eq!(s.fixed_row_bytes(), 16);
        assert!(!s.all_fixed());
    }

    #[test]
    fn type_tags_round_trip() {
        for t in [
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Date,
            DataType::VarChar,
        ] {
            assert_eq!(DataType::from_tag(t.tag()).unwrap(), t);
        }
        assert!(DataType::from_tag(99).is_err());
    }

    #[test]
    fn display_formats() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("sourceIP VARCHAR"));
        assert!(d.contains("visitDate DATE"));
    }

    #[test]
    fn clone_is_shallow() {
        let s = sample();
        let t = s.clone();
        assert!(Arc::ptr_eq(&s.fields, &t.fields));
    }
}
