//! Rows and text-line parsing.
//!
//! The HAIL client parses each uploaded line against the user-declared
//! schema (§3.1). Lines that do not match are *bad records*: they are not
//! dropped but routed to a dedicated section of the block, and at query
//! time handed to the map function with a bad-record flag.

use crate::error::{HailError, Result};
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A parsed row: one [`Value`] per schema attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    pub fn values(&self) -> &[Value] {
        &self.values
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at 0-based column index.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// Value addressed by the paper's 1-based `@pos` convention.
    pub fn get_position(&self, pos: usize) -> Result<&Value> {
        if pos == 0 {
            return Err(HailError::UnknownAttribute(0));
        }
        self.values
            .get(pos - 1)
            .ok_or(HailError::UnknownAttribute(pos))
    }

    /// Projects the row to the given 0-based column indexes.
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row::new(indexes.iter().map(|&i| self.values[i].clone()).collect())
    }

    /// Total binary encoding size of the row in bytes.
    pub fn encoded_len(&self) -> usize {
        self.values.iter().map(Value::encoded_len).sum()
    }

    /// Size of the row as a delimiter-separated text line including the
    /// trailing newline, as it would appear in the original upload.
    pub fn text_len(&self) -> usize {
        let seps = self.values.len().saturating_sub(1);
        self.values.iter().map(Value::text_len).sum::<usize>() + seps + 1
    }

    /// Renders the row as a delimited text line (no trailing newline).
    pub fn to_line(&self, delimiter: char) -> String {
        let mut out = String::with_capacity(self.text_len());
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(delimiter);
            }
            // Avoid format! allocation per field.
            use std::fmt::Write as _;
            let _ = write!(out, "{v}");
        }
        out
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line('|'))
    }
}

/// The outcome of parsing one text line: a good row or a bad record
/// carrying the raw line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsedRecord {
    Good(Row),
    /// The raw line plus the reason it failed to parse. HAIL stores these
    /// verbatim in the bad-record section of the block.
    Bad {
        line: String,
        reason: String,
    },
}

impl ParsedRecord {
    pub fn is_good(&self) -> bool {
        matches!(self, ParsedRecord::Good(_))
    }

    pub fn into_row(self) -> Option<Row> {
        match self {
            ParsedRecord::Good(r) => Some(r),
            ParsedRecord::Bad { .. } => None,
        }
    }
}

/// Parses one delimited text line against a schema.
///
/// Field-count mismatches and per-field parse failures both yield
/// [`ParsedRecord::Bad`]; this function never errors, mirroring HAIL's
/// upload path which must ingest arbitrary files.
pub fn parse_line(line: &str, schema: &Schema, delimiter: char) -> ParsedRecord {
    let mut values = Vec::with_capacity(schema.len());
    let mut fields = line.split(delimiter);
    for field_def in schema.fields() {
        let Some(token) = fields.next() else {
            return ParsedRecord::Bad {
                line: line.to_string(),
                reason: format!("expected {} fields, found {}", schema.len(), values.len()),
            };
        };
        match Value::parse(token, field_def.data_type) {
            Ok(v) => values.push(v),
            Err(e) => {
                return ParsedRecord::Bad {
                    line: line.to_string(),
                    reason: e.to_string(),
                }
            }
        }
    }
    if fields.next().is_some() {
        return ParsedRecord::Bad {
            line: line.to_string(),
            reason: format!("more than {} fields", schema.len()),
        };
    }
    ParsedRecord::Good(Row::new(values))
}

/// Strict variant of [`parse_line`] for callers that must not see bad
/// records (e.g. tests and oracle evaluators).
pub fn parse_line_strict(line: &str, schema: &Schema, delimiter: char) -> Result<Row> {
    match parse_line(line, schema, delimiter) {
        ParsedRecord::Good(r) => Ok(r),
        ParsedRecord::Bad { line, reason } => Err(HailError::BadRecord { line, reason }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("ip", DataType::VarChar),
            Field::new("visitDate", DataType::Date),
            Field::new("revenue", DataType::Float),
            Field::new("duration", DataType::Int),
        ])
        .unwrap()
    }

    #[test]
    fn parses_good_line() {
        let r = parse_line("1.2.3.4|1999-06-01|3.5|12", &schema(), '|');
        let row = r.into_row().expect("good row");
        assert_eq!(row.get(0).unwrap().as_str(), Some("1.2.3.4"));
        assert_eq!(row.get(3).unwrap().as_i32(), Some(12));
    }

    #[test]
    fn too_few_fields_is_bad() {
        let r = parse_line("1.2.3.4|1999-06-01", &schema(), '|');
        assert!(!r.is_good());
    }

    #[test]
    fn too_many_fields_is_bad() {
        let r = parse_line("a|1999-06-01|1.0|2|extra", &schema(), '|');
        assert!(!r.is_good());
    }

    #[test]
    fn type_mismatch_is_bad() {
        let r = parse_line("a|not-a-date|1.0|2", &schema(), '|');
        match r {
            ParsedRecord::Bad { reason, .. } => assert!(reason.contains("DATE")),
            _ => panic!("expected bad record"),
        }
    }

    #[test]
    fn strict_parse_errors() {
        assert!(parse_line_strict("x", &schema(), '|').is_err());
        assert!(parse_line_strict("a|1999-06-01|1.0|2", &schema(), '|').is_ok());
    }

    #[test]
    fn line_round_trip() {
        let line = "1.2.3.4|1999-06-01|3.5|12";
        let row = parse_line_strict(line, &schema(), '|').unwrap();
        assert_eq!(row.to_line('|'), line);
    }

    #[test]
    fn projection() {
        let row = parse_line_strict("a|1999-06-01|1.5|9", &schema(), '|').unwrap();
        let p = row.project(&[3, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.get(0).unwrap().as_i32(), Some(9));
        assert_eq!(p.get(1).unwrap().as_str(), Some("a"));
    }

    #[test]
    fn one_based_get() {
        let row = parse_line_strict("a|1999-06-01|1.5|9", &schema(), '|').unwrap();
        assert_eq!(row.get_position(1).unwrap().as_str(), Some("a"));
        assert!(row.get_position(0).is_err());
        assert!(row.get_position(5).is_err());
    }

    #[test]
    fn text_len_matches_rendered() {
        let row = parse_line_strict("abc|1999-06-01|1.5|9", &schema(), '|').unwrap();
        assert_eq!(row.text_len(), row.to_line('|').len() + 1);
    }
}
