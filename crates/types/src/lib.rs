//! # hail-types
//!
//! Foundation types for the HAIL workspace: schemas, typed values, rows,
//! binary codecs, configuration constants, and the shared error type.
//!
//! Everything here is deliberately dependency-light; the storage engine
//! (`hail-pax`, `hail-dfs`), the MapReduce engine (`hail-mr`) and the HAIL
//! library proper (`hail-core`) all build on these types.

#![forbid(unsafe_code)]

pub mod access;
pub mod bytes_util;
pub mod config;
pub mod error;
pub mod row;
pub mod schema;
pub mod value;

pub use access::AccessPathKind;
pub use config::StorageConfig;
pub use error::{HailError, Result};
pub use row::{parse_line, parse_line_strict, ParsedRecord, Row};
pub use schema::{DataType, Field, Schema};
pub use value::Value;

/// Identifier of a logical HDFS block.
pub type BlockId = u64;

/// Identifier of a datanode (0-based; `DN1` in the paper is id 0).
pub type DatanodeId = usize;
