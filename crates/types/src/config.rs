//! Upload- and storage-level configuration knobs shared across crates.

/// HDFS chunk size: checksums are computed per 512-byte chunk (§3.2).
pub const CHUNK_SIZE: usize = 512;

/// Maximum packet payload: chunks are collected into packets of up to
/// 64 KB including checksums and metadata (§3.2).
pub const PACKET_SIZE: usize = 64 * 1024;

/// The paper's index partition size: the sparse clustered index divides a
/// column into partitions of 1,024 values (§3.5, Fig. 2).
pub const INDEX_PARTITION_SIZE: usize = 1024;

/// Default HDFS block size (64 MB) — experiments run with a scaled-down
/// block size but the default mirrors Hadoop's.
pub const DEFAULT_BLOCK_SIZE: usize = 64 * 1024 * 1024;

/// Default replication factor.
pub const DEFAULT_REPLICATION: usize = 3;

/// Storage-level configuration for an upload.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Target logical block size in bytes. The HAIL client cuts blocks at
    /// row boundaries, so actual blocks may be slightly smaller.
    pub block_size: usize,
    /// Number of physical replicas per block.
    pub replication: usize,
    /// Field delimiter of the uploaded text files.
    pub delimiter: char,
    /// Values per index partition (1,024 in the paper).
    pub index_partition_size: usize,
}

impl Default for StorageConfig {
    fn default() -> Self {
        StorageConfig {
            block_size: DEFAULT_BLOCK_SIZE,
            replication: DEFAULT_REPLICATION,
            delimiter: '|',
            index_partition_size: INDEX_PARTITION_SIZE,
        }
    }
}

impl StorageConfig {
    /// A configuration scaled down for tests and laptop-scale experiments:
    /// small blocks, same structure.
    pub fn test_scale(block_size: usize) -> Self {
        StorageConfig {
            block_size,
            ..Default::default()
        }
    }

    /// Builder-style replication override.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Builder-style block-size override.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = block_size;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = StorageConfig::default();
        assert_eq!(c.block_size, 64 * 1024 * 1024);
        assert_eq!(c.replication, 3);
        assert_eq!(c.index_partition_size, 1024);
        assert_eq!(CHUNK_SIZE, 512);
        assert_eq!(PACKET_SIZE, 65536);
    }

    #[test]
    fn builder_overrides() {
        let c = StorageConfig::test_scale(4096).with_replication(5);
        assert_eq!(c.block_size, 4096);
        assert_eq!(c.replication, 5);
    }
}
