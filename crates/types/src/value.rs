//! Typed values and their text/binary encodings.

use crate::error::{HailError, Result};
use crate::schema::DataType;
use std::cmp::Ordering;
use std::fmt;

/// Days between 1970-01-01 and year 1 (proleptic Gregorian), used by the
/// date codec below.
const DAYS_FROM_CE_TO_EPOCH: i64 = 719_162;

/// A single typed value.
///
/// `Float` wraps an `f64` but the type implements total ordering (via
/// `f64::total_cmp`) and `Eq`/`Hash` so values can be used as sort keys —
/// a requirement for building clustered indexes on `adRevenue`.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i32),
    Long(i64),
    Float(f64),
    /// Days since the Unix epoch.
    Date(i32),
    Str(String),
}

impl Value {
    /// The [`DataType`] of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Long(_) => DataType::Long,
            Value::Float(_) => DataType::Float,
            Value::Date(_) => DataType::Date,
            Value::Str(_) => DataType::VarChar,
        }
    }

    /// Parses a text token into a value of the requested type.
    ///
    /// This is the parser the HAIL client runs while converting uploaded
    /// text to binary PAX; a failure here makes the whole row a *bad
    /// record*.
    pub fn parse(token: &str, data_type: DataType) -> Result<Value> {
        let bad = |reason: &str| HailError::BadRecord {
            line: token.to_string(),
            reason: reason.to_string(),
        };
        match data_type {
            DataType::Int => token
                .trim()
                .parse::<i32>()
                .map(Value::Int)
                .map_err(|_| bad("not an INT")),
            DataType::Long => token
                .trim()
                .parse::<i64>()
                .map(Value::Long)
                .map_err(|_| bad("not a LONG")),
            DataType::Float => token
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|f| f.is_finite())
                .map(Value::Float)
                .ok_or_else(|| bad("not a finite FLOAT")),
            DataType::Date => parse_date(token.trim())
                .map(Value::Date)
                .ok_or_else(|| bad("not a DATE (expected YYYY-MM-DD)")),
            DataType::VarChar => {
                if token.bytes().any(|b| b == 0) {
                    Err(bad("VARCHAR may not contain NUL"))
                } else {
                    Ok(Value::Str(token.to_string()))
                }
            }
        }
    }

    /// The integer form used by fixed-width codecs. Panics on `Str`.
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::Int(v) => *v as i64,
            Value::Long(v) => *v,
            Value::Float(v) => v.to_bits() as i64,
            Value::Date(v) => *v as i64,
            Value::Str(_) => panic!("as_i64 on VarChar value"),
        }
    }

    /// The i32 payload of `Int`/`Date` values.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::Int(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// The f64 payload of `Float` values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload of `Str` values.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Size of the binary encoding in bytes (varchar: bytes + NUL).
    pub fn encoded_len(&self) -> usize {
        match self {
            Value::Int(_) | Value::Date(_) => 4,
            Value::Long(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 1,
        }
    }

    /// Size of the text encoding in bytes (what the value occupies in the
    /// original CSV line). Used by the cost model.
    pub fn text_len(&self) -> usize {
        self.to_string().len()
    }

    /// Total-order comparison. Values of different types order by type tag
    /// — comparisons across types only occur in corrupted inputs and must
    /// still be deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Long(a), Long(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Cross-type: compare numeric families loosely, else by tag.
            (Int(a), Long(b)) => (*a as i64).cmp(b),
            (Long(a), Int(b)) => a.cmp(&(*b as i64)),
            _ => self.data_type().tag().cmp(&other.data_type().tag()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data_type().tag().hash(state);
        match self {
            Value::Int(v) => v.hash(state),
            Value::Long(v) => v.hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Date(v) => v.hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Long(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Date(v) => {
                let (y, m, d) = date_from_days(*v);
                write!(f, "{y:04}-{m:02}-{d:02}")
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

/// Parses `YYYY-MM-DD` into days since the Unix epoch.
///
/// Implemented from first principles (proleptic Gregorian) to avoid a
/// date-library dependency; validated against round-trip property tests.
pub fn parse_date(s: &str) -> Option<i32> {
    let bytes = s.as_bytes();
    if bytes.len() != 10 || bytes[4] != b'-' || bytes[7] != b'-' {
        return None;
    }
    let year: i32 = s[0..4].parse().ok()?;
    let month: u32 = s[5..7].parse().ok()?;
    let day: u32 = s[8..10].parse().ok()?;
    days_from_ymd(year, month, day)
}

/// True for Gregorian leap years.
fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

fn days_in_month(year: i32, month: u32) -> u32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

/// Days since the Unix epoch for a calendar date; `None` if out of range.
pub fn days_from_ymd(year: i32, month: u32, day: u32) -> Option<i32> {
    if !(1..=9999).contains(&year) || !(1..=12).contains(&month) {
        return None;
    }
    if day == 0 || day > days_in_month(year, month) {
        return None;
    }
    // Days from 0001-01-01 (day 0) to the first of the given year.
    let y = (year - 1) as i64;
    let mut days = y * 365 + y / 4 - y / 100 + y / 400;
    for m in 1..month {
        days += days_in_month(year, m) as i64;
    }
    days += (day - 1) as i64;
    Some((days - DAYS_FROM_CE_TO_EPOCH) as i32)
}

/// Inverse of [`days_from_ymd`]: converts days-since-epoch back to
/// `(year, month, day)`.
pub fn date_from_days(days: i32) -> (i32, u32, u32) {
    let mut remaining = days as i64 + DAYS_FROM_CE_TO_EPOCH;
    // 400-year cycles of 146097 days keep this O(1)-ish.
    let cycles = remaining.div_euclid(146_097);
    remaining = remaining.rem_euclid(146_097);
    let mut year = (cycles * 400 + 1) as i32;
    loop {
        let len = if is_leap(year) { 366 } else { 365 };
        if remaining < len {
            break;
        }
        remaining -= len;
        year += 1;
    }
    let mut month = 1u32;
    loop {
        let len = days_in_month(year, month) as i64;
        if remaining < len {
            break;
        }
        remaining -= len;
        month += 1;
    }
    (year, month, remaining as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_int_and_long() {
        assert_eq!(Value::parse("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(
            Value::parse(" -7 ", DataType::Long).unwrap(),
            Value::Long(-7)
        );
        assert!(Value::parse("4.2", DataType::Int).is_err());
        assert!(Value::parse("", DataType::Int).is_err());
    }

    #[test]
    fn parse_float_rejects_nan_and_inf() {
        assert!(Value::parse("NaN", DataType::Float).is_err());
        assert!(Value::parse("inf", DataType::Float).is_err());
        assert_eq!(
            Value::parse("3.25", DataType::Float).unwrap(),
            Value::Float(3.25)
        );
    }

    #[test]
    fn parse_varchar_rejects_nul() {
        assert!(Value::parse("a\0b", DataType::VarChar).is_err());
        assert_eq!(
            Value::parse("hello", DataType::VarChar).unwrap(),
            Value::Str("hello".into())
        );
    }

    #[test]
    fn date_epoch_is_zero() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
    }

    #[test]
    fn date_known_values() {
        // 2000-01-01 is 10957 days after the epoch.
        assert_eq!(parse_date("2000-01-01"), Some(10_957));
        // Leap day handling.
        assert!(parse_date("2000-02-29").is_some());
        assert_eq!(parse_date("1900-02-29"), None);
        assert_eq!(parse_date("1999-13-01"), None);
        assert_eq!(parse_date("1999-00-10"), None);
        assert_eq!(parse_date("1999-01-32"), None);
        assert_eq!(parse_date("1999/01/01"), None);
    }

    #[test]
    fn date_round_trip_sample() {
        for s in [
            "1992-12-22",
            "1999-01-01",
            "2000-01-01",
            "2011-06-30",
            "1970-01-01",
            "2400-02-29",
        ] {
            let days = parse_date(s).unwrap();
            assert_eq!(Value::Date(days).to_string(), s);
        }
    }

    #[test]
    fn float_total_order() {
        let a = Value::Float(-0.0);
        let b = Value::Float(0.0);
        // total_cmp distinguishes -0.0 < 0.0; we just need determinism.
        assert_eq!(a.total_cmp(&b), Ordering::Less);
        assert_eq!(Value::Float(1.5).cmp(&Value::Float(2.5)), Ordering::Less);
    }

    #[test]
    fn cross_type_compare_is_deterministic() {
        let v = Value::Int(5);
        let s = Value::Str("5".into());
        let c1 = v.total_cmp(&s);
        let c2 = v.total_cmp(&s);
        assert_eq!(c1, c2);
        assert_eq!(v.total_cmp(&Value::Long(6)), Ordering::Less);
    }

    #[test]
    fn encoded_len() {
        assert_eq!(Value::Int(1).encoded_len(), 4);
        assert_eq!(Value::Long(1).encoded_len(), 8);
        assert_eq!(Value::Float(1.0).encoded_len(), 8);
        assert_eq!(Value::Date(1).encoded_len(), 4);
        assert_eq!(Value::Str("abc".into()).encoded_len(), 4);
    }

    #[test]
    fn display_date() {
        let d = parse_date("2011-09-15").unwrap();
        assert_eq!(Value::Date(d).to_string(), "2011-09-15");
    }
}
